package exec

import (
	"context"
	"sync"

	"github.com/tukwila/adp/internal/types"
)

// Partition-parallel execution. A partitioned plan runs as P clones of the
// operator chain, each with its own Context (virtual clock) and its own
// state structures, so the per-tuple hot path takes no locks. The
// ParallelDriver reads sources with the same availability-ordered serial
// loop as Driver, hash-scatters each post-filter run across the partitions
// (an Exchange per leaf), and hands sub-batches to one worker goroutine
// per partition over bounded channels. Worker-side Exchanges installed at
// repartition boundaries (join→join, join→agg) deliver same-partition rows
// synchronously and queue cross-partition rows in per-destination outbox
// buffers that the worker flushes between messages — never from inside an
// operator frame, so operator scratch state is never reentered, and the
// flush loop keeps receiving its own inbox while a send blocks, which
// makes the bounded channels deadlock-free.
//
// Consistency points use a single WaitGroup that counts in-flight
// messages plus non-empty outbox slots: when it reaches zero, every
// delivered tuple has been fully processed and every worker is parked on
// an empty inbox — the "consistent state" the corrective monitor needs
// (§4.1), reached here by quiescing instead of by being single-threaded.
// End-of-stream runs the pipeline finishers as broadcast finish steps,
// one quiesce round per finisher, so cross-partition emissions of step s
// (a pre-aggregate flush, a drained build-then-probe) are absorbed
// everywhere before any step s+1 finisher runs.
const (
	// ParReadBatch is the parallel driver's source-read batch cap: larger
	// than the serial DefaultBatch so each channel message amortizes more
	// per-message overhead.
	ParReadBatch = 512
	// parInboxCap bounds each worker's inbox, in messages.
	parInboxCap = 8
)

// parMsg is one unit of work on a worker inbox: a finish step broadcast
// (step >= 0) or a data sub-batch for one entry point.
type parMsg struct {
	step    int // -1 = data message, >= 0 = run finisher step
	entry   int
	rows    []types.Tuple
	buf     *[]types.Tuple // pooled backing storage, recycled after processing
	arrival float64        // sender's virtual time; receiver advances to it
}

// ParallelDriver executes one lowered, partitioned plan: the serial read
// loop on the calling goroutine, one worker per partition. Construct with
// NewParallelDriver, wire entries with Bind/LeafScatter, then Run, Finish,
// Close (in that order).
type ParallelDriver struct {
	ctx   *Context // driver context: read-loop clock and cost model
	parts int
	ctxs  []*Context // per-partition contexts

	// handlers[p][e] delivers a data sub-batch into partition p's entry e.
	// Entry numbering is the caller's (leaf entries then boundaries).
	handlers [][]func([]types.Tuple)
	finish   func(part, step int)
	steps    int

	inbox   []chan parMsg
	workers []*parWorker
	// inflight counts undelivered/unprocessed messages plus non-empty
	// outbox slots; zero means the whole pipeline is quiescent.
	inflight sync.WaitGroup
	joined   sync.WaitGroup // worker goroutines
	pool     sync.Pool      // *[]types.Tuple message buffers

	read    *Driver
	started bool
	closed  bool

	// Fatal mirrors Driver.Fatal for the parallel read loop: consulted
	// between read batches; a non-nil return aborts the run with that
	// error after quiescing the workers. Set before RunContext.
	Fatal func() error
}

// parWorker owns partition p: its inbox processing and its outbox
// buffers (out[dst][entry], unused for dst == p).
type parWorker struct {
	pd  *ParallelDriver
	p   int
	out [][][]types.Tuple
}

// NewParallelDriver creates a driver over per-partition contexts (one per
// partition, typically fresh clocks sharing ctx's cost model).
func NewParallelDriver(ctx *Context, ctxs []*Context) *ParallelDriver {
	return &ParallelDriver{ctx: ctx, parts: len(ctxs), ctxs: ctxs}
}

// Partitions returns the partition count.
func (pd *ParallelDriver) Partitions() int { return pd.parts }

// PartitionContexts exposes the per-partition contexts (read their clocks
// only at a consistent point: after Quiesce, Finish, or Close).
func (pd *ParallelDriver) PartitionContexts() []*Context { return pd.ctxs }

// Bind installs the per-partition entry handlers and the finisher
// protocol (steps broadcast rounds, each running finish(p, step) on every
// partition). Must be called before Run.
func (pd *ParallelDriver) Bind(handlers [][]func([]types.Tuple), finish func(part, step int), steps int) {
	pd.handlers = handlers
	pd.finish = finish
	pd.steps = steps
}

// LeafScatter returns the driver-side exchange for one source leaf: a
// batch-capable sink that hash-partitions post-filter source rows on
// keyCols and ships each partition's share to its worker, stamped with
// the driver clock's current virtual time (the rows' arrival horizon).
func (pd *ParallelDriver) LeafScatter(entry int, keyCols []int) *Exchange {
	return NewExchange(pd.parts, keyCols, func(part int, rows []types.Tuple) {
		pd.sendData(part, entry, rows)
	})
}

// StageSend is the worker-side exchange route: rows produced by partition
// `from` for another partition are appended to the sender's outbox slot
// and flushed between messages. It must only be called from partition
// from's worker goroutine (exchanges live inside that partition's chain).
func (pd *ParallelDriver) StageSend(from, dst, entry int, rows []types.Tuple) {
	if dst == from {
		pd.handlers[from][entry](rows)
		return
	}
	w := pd.workers[from]
	slot := w.out[dst][entry]
	if len(slot) == 0 {
		// The slot's credit is released when the packed message is
		// processed by the destination worker.
		pd.inflight.Add(1)
	}
	w.out[dst][entry] = append(slot, rows...)
}

// sendData ships a data sub-batch from the driver goroutine to a worker,
// copying the rows into a pooled buffer (the source slice is reused by
// the caller's exchange).
func (pd *ParallelDriver) sendData(dst, entry int, rows []types.Tuple) {
	buf := pd.getBuf()
	*buf = append((*buf)[:0], rows...)
	pd.inflight.Add(1)
	pd.inbox[dst] <- parMsg{step: -1, entry: entry, rows: *buf, buf: buf, arrival: pd.ctx.Clock.Now}
}

func (pd *ParallelDriver) getBuf() *[]types.Tuple {
	if b, ok := pd.pool.Get().(*[]types.Tuple); ok {
		return b
	}
	b := make([]types.Tuple, 0, ParReadBatch)
	return &b
}

// start launches the workers (idempotent).
func (pd *ParallelDriver) start() {
	if pd.started {
		return
	}
	pd.started = true
	entries := 0
	if len(pd.handlers) > 0 {
		entries = len(pd.handlers[0])
	}
	pd.inbox = make([]chan parMsg, pd.parts)
	pd.workers = make([]*parWorker, pd.parts)
	for p := 0; p < pd.parts; p++ {
		pd.inbox[p] = make(chan parMsg, parInboxCap)
		out := make([][][]types.Tuple, pd.parts)
		for d := range out {
			out[d] = make([][]types.Tuple, entries)
		}
		pd.workers[p] = &parWorker{pd: pd, p: p, out: out}
	}
	for p := 0; p < pd.parts; p++ {
		pd.joined.Add(1)
		go pd.workers[p].run()
	}
}

// Run delivers source tuples until exhaustion or until poll asks to
// suspend, exactly like Driver.Run, except that deliveries scatter across
// the partition workers and poll observes a quiesced pipeline: before
// each poll call the driver waits until every in-flight batch has been
// fully processed and all workers are parked, so poll may safely read
// per-partition operator state. The leaves' Push/PushBatch functions are
// expected to route into this driver's LeafScatter exchanges.
func (pd *ParallelDriver) Run(leaves []*Leaf, pollEvery int, poll func() bool) (exhausted bool) {
	exhausted, _ = pd.RunContext(context.Background(), leaves, pollEvery, poll)
	return exhausted
}

// RunContext is Run with cancellation. The context is checked between
// read batches; on cancel the driver stops reading, quiesces the workers
// (every in-flight message fully processed, all workers parked — the same
// consistent state a poll suspension reaches), and returns the context's
// error. The workers stay alive so the caller decides between resuming
// and Close; a canceled run must still Close to join them.
func (pd *ParallelDriver) RunContext(ctx context.Context, leaves []*Leaf, pollEvery int, poll func() bool) (exhausted bool, err error) {
	pd.start()
	pd.read = NewDriver(pd.ctx, leaves...)
	pd.read.Fatal = pd.Fatal
	wrapped := poll
	if poll != nil {
		wrapped = func() bool {
			pd.Quiesce()
			return poll()
		}
	}
	exhausted, err = pd.read.run(ctx, ParReadBatch, pollEvery, wrapped)
	if err != nil {
		pd.Quiesce()
	}
	return exhausted, err
}

// Delivered reports tuples delivered across all leaves so far.
func (pd *ParallelDriver) Delivered() int64 {
	if pd.read == nil {
		return 0
	}
	return pd.read.Delivered
}

// Quiesce blocks until the pipeline is fully drained: all sent messages
// processed, all outboxes flushed, all workers parked on empty inboxes.
// Only the driver goroutine may call it, and not while a send is pending.
func (pd *ParallelDriver) Quiesce() {
	pd.inflight.Wait()
}

// Finish propagates end-of-stream: each pipeline finisher runs as one
// broadcast round across all partitions with a quiesce barrier after it,
// so everything a finisher emits — including cross-partition rows through
// boundary exchanges — is absorbed everywhere before the next finisher.
func (pd *ParallelDriver) Finish() {
	pd.start()
	pd.Quiesce()
	for s := 0; s < pd.steps; s++ {
		for p := 0; p < pd.parts; p++ {
			pd.inflight.Add(1)
			pd.inbox[p] <- parMsg{step: s}
		}
		pd.Quiesce()
	}
}

// Close shuts the workers down after a final quiesce. The per-partition
// contexts and operator state are safe to read afterwards.
func (pd *ParallelDriver) Close() {
	if !pd.started || pd.closed {
		return
	}
	pd.closed = true
	pd.Quiesce()
	for p := range pd.inbox {
		close(pd.inbox[p])
	}
	pd.joined.Wait()
}

// FoldClocks folds the per-partition clocks into the driver clock: Now
// advances to the slowest partition (the parallel makespan — partitions
// run concurrently, so elapsed virtual time is their maximum), while CPU
// accumulates every partition's charged work (total work is the sum).
//
// Determinism caveat: a partition clock interleaves AdvanceTo (a max)
// with Charge (a sum), so its reading depends on message arrival order.
// With the driver as a partition's only producer that order is FIFO and
// the clocks are reproducible; once mid-plan exchanges add peer-worker
// producers, inbox interleaving is scheduling-dependent and per-partition
// readings may vary run-to-run (bounded by the work performed). Rows and
// counters are never affected — only the clock diagnostics.
func (pd *ParallelDriver) FoldClocks() {
	for _, c := range pd.ctxs {
		pd.ctx.Clock.AdvanceTo(c.Clock.Now)
		pd.ctx.Clock.CPU += c.Clock.CPU
	}
}

// run is the worker loop: flush the outbox, then block on the inbox.
func (w *parWorker) run() {
	defer w.pd.joined.Done()
	for {
		w.flush()
		m, ok := <-w.pd.inbox[w.p]
		if !ok {
			return
		}
		w.handle(m)
	}
}

// handle processes one message. For data, the partition clock first
// advances to the batch's arrival horizon (a partition cannot process
// tuples before they exist), then the entry's operators run and charge
// their costs to this partition's clock.
func (w *parWorker) handle(m parMsg) {
	pd := w.pd
	if m.step >= 0 {
		pd.finish(w.p, m.step)
		pd.inflight.Done()
		return
	}
	pd.ctxs[w.p].Clock.AdvanceTo(m.arrival)
	pd.handlers[w.p][m.entry](m.rows)
	if m.buf != nil {
		clear(m.rows)
		*m.buf = m.rows[:0]
		pd.pool.Put(m.buf)
	}
	pd.inflight.Done()
}

// flush drains every non-empty outbox slot. Processing received messages
// while a send blocks may refill slots (including ones already visited),
// so the scan repeats until a full pass finds nothing pending.
func (w *parWorker) flush() {
	for {
		pending := false
		for dst := 0; dst < w.pd.parts; dst++ {
			if dst == w.p {
				continue
			}
			for e := range w.out[dst] {
				if len(w.out[dst][e]) == 0 {
					continue
				}
				pending = true
				w.sendSlot(dst, e)
			}
		}
		if !pending {
			return
		}
	}
}

// sendSlot packs one outbox slot into a pooled message and sends it,
// servicing this worker's own inbox while the destination is full — the
// receive keeps the system live (no send-cycle deadlock) and is safe
// because flush only runs between messages, never inside an operator.
func (w *parWorker) sendSlot(dst, entry int) {
	pd := w.pd
	rows := w.out[dst][entry]
	buf := pd.getBuf()
	*buf = append((*buf)[:0], rows...)
	clear(rows)
	w.out[dst][entry] = rows[:0]
	// The slot's inflight credit transfers to the message; the receiver
	// releases it after processing.
	m := parMsg{step: -1, entry: entry, rows: *buf, buf: buf, arrival: pd.ctxs[w.p].Clock.Now}
	for {
		select {
		case pd.inbox[dst] <- m:
			return
		case in, ok := <-pd.inbox[w.p]:
			if ok {
				w.handle(in)
			}
		}
	}
}

// PartitionMerge is the deterministic ordered merge sink at the root of a
// partitioned plan: partition p's root output accumulates in its own
// buffer (append order — deterministic whenever the partition's input
// order is), and Drain concatenates the buffers downstream in ascending
// partition order. With cross-partition repartitioning in the plan the
// inter-partition interleaving is scheduling-dependent, so the merged
// stream is guaranteed deterministic as a per-partition-ordered multiset,
// not as a global sequence.
type PartitionMerge struct {
	bufs []*partitionBuf
}

// partitionBuf buffers one partition's root output (it retains the
// tuples, which the batch contract allows, but copies the slice headers).
type partitionBuf struct{ rows []types.Tuple }

// Push implements Sink.
func (b *partitionBuf) Push(t types.Tuple) { b.rows = append(b.rows, t) }

// PushBatch implements BatchSink.
func (b *partitionBuf) PushBatch(ts []types.Tuple) { b.rows = append(b.rows, ts...) }

// NewPartitionMerge creates a merge over parts partitions.
func NewPartitionMerge(parts int) *PartitionMerge {
	m := &PartitionMerge{bufs: make([]*partitionBuf, parts)}
	for i := range m.bufs {
		m.bufs[i] = &partitionBuf{}
	}
	return m
}

// Sink returns partition p's root sink.
func (m *PartitionMerge) Sink(p int) Sink { return m.bufs[p] }

// Len returns the total number of buffered root tuples.
func (m *PartitionMerge) Len() int {
	n := 0
	for _, b := range m.bufs {
		n += len(b.rows)
	}
	return n
}

// Drain delivers the buffered output downstream in partition order,
// releasing the buffers. Call only after the pipeline has quiesced.
func (m *PartitionMerge) Drain(out Sink) {
	for _, b := range m.bufs {
		if len(b.rows) > 0 {
			PushAll(out, b.rows)
		}
		b.rows = nil
	}
}

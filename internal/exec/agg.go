package exec

import (
	"fmt"
	"sort"

	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/expr"
	"github.com/tukwila/adp/internal/stats"
	"github.com/tukwila/adp/internal/types"
)

// aggState is the distributive state of one aggregate in one group. Every
// paper aggregate (min, max, sum, count, avg) is covered: avg decomposes
// into sum+count (§2.2 footnote 1), which is why pre-aggregation and
// cross-phase shared group-bys are sound.
type aggState struct {
	has    bool
	minmax types.Value
	sum    float64
	cnt    int64
}

func (s *aggState) accumulate(kind algebra.AggKind, v types.Value) {
	switch kind {
	case algebra.AggCount:
		s.cnt++
		return
	}
	if v.IsNull() {
		return
	}
	switch kind {
	case algebra.AggMin:
		if !s.has || types.Compare(v, s.minmax) < 0 {
			s.minmax = v
		}
	case algebra.AggMax:
		if !s.has || types.Compare(v, s.minmax) > 0 {
			s.minmax = v
		}
	case algebra.AggSum:
		s.sum += v.AsFloat()
	case algebra.AggAvg:
		s.sum += v.AsFloat()
	}
	s.cnt++
	s.has = true
}

// merge folds a partial state (from a pre-aggregation or another phase)
// into s.
func (s *aggState) merge(kind algebra.AggKind, other aggState) {
	switch kind {
	case algebra.AggMin:
		if other.has && (!s.has || types.Compare(other.minmax, s.minmax) < 0) {
			s.minmax = other.minmax
			s.has = true
		}
	case algebra.AggMax:
		if other.has && (!s.has || types.Compare(other.minmax, s.minmax) > 0) {
			s.minmax = other.minmax
			s.has = true
		}
	case algebra.AggSum, algebra.AggAvg:
		s.sum += other.sum
		s.cnt += other.cnt
		s.has = s.has || other.has
	case algebra.AggCount:
		s.cnt += other.cnt
	}
}

func (s *aggState) final(kind algebra.AggKind) types.Value {
	switch kind {
	case algebra.AggMin, algebra.AggMax:
		if !s.has {
			return types.Null()
		}
		return s.minmax
	case algebra.AggSum:
		return types.Float(s.sum)
	case algebra.AggCount:
		return types.Int(s.cnt)
	default: // avg
		if s.cnt == 0 {
			return types.Null()
		}
		return types.Float(s.sum / float64(s.cnt))
	}
}

// partialCols returns the partial-tuple state values of s in the layout of
// algebra.GroupSchema(partial=true).
func (s *aggState) partialCols(kind algebra.AggKind) []types.Value {
	switch kind {
	case algebra.AggMin, algebra.AggMax:
		if !s.has {
			return []types.Value{types.Null()}
		}
		return []types.Value{s.minmax}
	case algebra.AggSum:
		return []types.Value{types.Float(s.sum)}
	case algebra.AggCount:
		return []types.Value{types.Int(s.cnt)}
	default: // avg -> sum, cnt
		return []types.Value{types.Float(s.sum), types.Int(s.cnt)}
	}
}

// loadPartial parses one partial tuple's state columns starting at col;
// it returns the parsed state and the next column index.
func loadPartial(kind algebra.AggKind, t types.Tuple, col int) (aggState, int) {
	switch kind {
	case algebra.AggMin, algebra.AggMax:
		v := t[col]
		return aggState{has: !v.IsNull(), minmax: v}, col + 1
	case algebra.AggSum:
		return aggState{has: true, sum: t[col].AsFloat()}, col + 1
	case algebra.AggCount:
		return aggState{cnt: t[col].AsInt()}, col + 1
	default: // avg
		return aggState{has: true, sum: t[col].AsFloat(), cnt: t[col+1].AsInt()}, col + 2
	}
}

type aggGroup struct {
	groupVals []types.Value
	states    []aggState
	m         *groupMaint // maintenance-mode state; nil otherwise
}

// AggTable is the hash-based aggregation state structure shared across ADP
// phases: the "shared Group-by operator" of Figure 1. Raw tuples (in the
// table's input layout) and partial tuples (in the corresponding partial
// layout) may be absorbed in any interleaving; EmitFinal produces the
// final aggregate relation.
type AggTable struct {
	ctx      *Context
	in       *types.Schema
	groupBy  []string
	aggs     []algebra.AggSpec
	groupIdx []int
	argEvals []expr.Evaluator

	outSchema     *types.Schema
	partialSchema *types.Schema

	// groups chains aggregate groups under their key hash; group identity
	// is the hash plus strict value equality (types.StrictEqual), which
	// matches the byte codec's grouping semantics exactly — Int(1),
	// Float(1), and Str("1") stay distinct — while letting the columnar
	// path route a whole batch off one types.HashKeys vector.
	groups  map[uint64][]*aggGroup
	nGroups int
	// valScratch is allocation-free grouping scratch: group values are
	// extracted into it and only copied to owned storage when a new group
	// is created. hashVec and rowView back the columnar absorb path.
	valScratch []types.Value
	hashVec    []uint64
	rowView    types.Tuple
	// hasArgs records whether any aggregate has an argument evaluator
	// (COUNT-only tables skip row materialization on the columnar path).
	hasArgs bool
	// emitBuf is the reused columnar delivery batch of EmitPartialTo.
	emitBuf *types.ColBatch

	// Maintenance (signed) mode: dirty lists the groups touched since
	// the last EmitRevisions, bagScratch is the reused min/max bag key
	// buffer, revBuf the reused revision delivery batch. See aggdelta.go.
	maint      bool
	hasMinMax  bool
	dirty      []*aggGroup
	bagScratch []byte
	revBuf     *types.ColBatch

	counters stats.OpCounters
}

// NewAggTable builds an aggregation table over raw input layout in.
func NewAggTable(ctx *Context, in *types.Schema, groupBy []string, aggs []algebra.AggSpec) (*AggTable, error) {
	a := &AggTable{
		ctx:           ctx,
		in:            in,
		groupBy:       groupBy,
		aggs:          aggs,
		outSchema:     algebra.GroupSchema(in, groupBy, aggs, false),
		partialSchema: algebra.GroupSchema(in, groupBy, aggs, true),
		groups:        make(map[uint64][]*aggGroup),
	}
	for _, g := range groupBy {
		i := in.IndexOf(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: group-by column %q not in input %v", g, in.Names())
		}
		a.groupIdx = append(a.groupIdx, i)
	}
	for _, spec := range aggs {
		if spec.Arg == nil {
			a.argEvals = append(a.argEvals, nil)
			continue
		}
		ev, err := spec.Arg.Bind(in)
		if err != nil {
			return nil, fmt.Errorf("exec: aggregate %s: %w", spec, err)
		}
		a.argEvals = append(a.argEvals, ev)
		a.hasArgs = true
	}
	return a, nil
}

// Schema returns the final output layout.
func (a *AggTable) Schema() *types.Schema { return a.outSchema }

// PartialSchema returns the layout of partial tuples this table accepts.
func (a *AggTable) PartialSchema() *types.Schema { return a.partialSchema }

// Counters exposes statistics.
func (a *AggTable) Counters() *stats.OpCounters { return &a.counters }

// Groups returns the current number of groups.
func (a *AggTable) Groups() int { return a.nGroups }

// groupFor finds or creates the group for the given key values (the
// scalar path: the hash is computed here, one value at a time).
func (a *AggTable) groupFor(vals []types.Value) *aggGroup {
	return a.groupForHashed(types.Tuple(vals).HashKey(types.Identity(len(vals))), vals)
}

// groupForHashed finds or creates the group for the given key values and
// their precomputed hash (the columnar path hands in one HashKeys lane
// per row). vals may be scratch storage: it is copied to owned storage
// only when the group is new. Lookup is allocation-free at steady state.
func (a *AggTable) groupForHashed(hash uint64, vals []types.Value) *aggGroup {
	for _, g := range a.groups[hash] {
		if strictEqualVals(g.groupVals, vals) {
			return g
		}
	}
	owned := make([]types.Value, len(vals))
	copy(owned, vals)
	g := &aggGroup{groupVals: owned, states: make([]aggState, len(a.aggs))}
	if a.maint {
		g.m = &groupMaint{hash: hash}
		if a.hasMinMax {
			g.m.bags = make([]valueBag, len(a.aggs))
		}
	}
	a.groups[hash] = append(a.groups[hash], g)
	a.nGroups++
	return g
}

// strictEqualVals reports element-wise strict equality (group identity).
func strictEqualVals(a, b []types.Value) bool {
	for i := range a {
		if !types.StrictEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// groupScratch returns the reused group-value buffer, sized to n.
func (a *AggTable) groupScratch(n int) []types.Value {
	if cap(a.valScratch) < n {
		a.valScratch = make([]types.Value, n)
	}
	return a.valScratch[:n]
}

// AbsorbRaw folds one raw tuple (input layout).
//
//adp:hotpath gated by BenchmarkAggTableAbsorb (scripts/check_allocs.sh)
func (a *AggTable) AbsorbRaw(t types.Tuple) {
	if a.maint {
		// Maintenance groups carry weights and value bags that plain
		// accumulation would not update; an unsigned absorb is an insert.
		a.absorbSigned(t, 1)
		return
	}
	a.counters.In++
	a.ctx.Clock.Charge(a.ctx.Cost.AggUpdate)
	vals := a.groupScratch(len(a.groupIdx))
	for i, gi := range a.groupIdx {
		vals[i] = t[gi]
	}
	g := a.groupFor(vals)
	for i, spec := range a.aggs {
		var v types.Value
		if a.argEvals[i] != nil {
			v = a.argEvals[i](t)
		}
		g.states[i].accumulate(spec.Kind, v)
	}
}

// Push implements Sink as AbsorbRaw, letting an AggTable terminate a push
// pipeline directly.
func (a *AggTable) Push(t types.Tuple) { a.AbsorbRaw(t) }

// PushBatch implements BatchSink: a batch of raw tuples is absorbed with
// the shared grouping scratch, no per-tuple allocations at steady state.
//
//adp:hotpath gated by BenchmarkAggTableAbsorb (scripts/check_allocs.sh)
func (a *AggTable) PushBatch(ts []types.Tuple) {
	for _, t := range ts {
		a.AbsorbRaw(t)
	}
}

// AbsorbPartial folds one partial tuple (PartialSchema layout), merging
// pre-aggregated states: the final GROUP BY "coalesces pre-grouped
// information instead of operating on original tuples" (§2.2).
func (a *AggTable) AbsorbPartial(t types.Tuple) {
	a.counters.In++
	a.ctx.Clock.Charge(a.ctx.Cost.AggUpdate)
	ng := len(a.groupIdx)
	vals := a.groupScratch(ng)
	copy(vals, t[:ng])
	g := a.groupFor(vals)
	col := ng
	for i, spec := range a.aggs {
		var st aggState
		st, col = loadPartial(spec.Kind, t, col)
		g.states[i].merge(spec.Kind, st)
	}
}

// AbsorbPartialBatch folds a batch of partial tuples.
func (a *AggTable) AbsorbPartialBatch(ts []types.Tuple) {
	for _, t := range ts {
		a.AbsorbPartial(t)
	}
}

// EmitFinal produces the final aggregate relation, sorted by group values
// for determinism, and charges output costs.
func (a *AggTable) EmitFinal() []types.Tuple {
	gs := make([]*aggGroup, 0, a.nGroups)
	for _, chain := range a.groups {
		gs = append(gs, chain...)
	}
	idx := types.Identity(len(a.groupIdx))
	sort.Slice(gs, func(i, j int) bool {
		return types.CompareKey(types.Tuple(gs[i].groupVals), idx, types.Tuple(gs[j].groupVals), idx) < 0
	})
	out := make([]types.Tuple, 0, len(gs))
	for _, g := range gs {
		t := make(types.Tuple, 0, len(g.groupVals)+len(a.aggs))
		t = append(t, g.groupVals...)
		for i, spec := range a.aggs {
			t = append(t, g.states[i].final(spec.Kind))
		}
		a.ctx.Clock.Charge(a.ctx.Cost.Move)
		a.counters.Out++
		out = append(out, t)
	}
	return out
}

// EmitPartial produces the table's groups as partial-layout tuples
// (PartialSchema), sorted by group values. A blocking AggTable emitting
// partials is exactly the paper's "traditional pre-aggregation" operator
// (§6): correct, but unpipelined.
func (a *AggTable) EmitPartial() []types.Tuple {
	gs := make([]*aggGroup, 0, a.nGroups)
	for _, chain := range a.groups {
		gs = append(gs, chain...)
	}
	idx := types.Identity(len(a.groupIdx))
	sort.Slice(gs, func(i, j int) bool {
		return types.CompareKey(types.Tuple(gs[i].groupVals), idx, types.Tuple(gs[j].groupVals), idx) < 0
	})
	out := make([]types.Tuple, 0, len(gs))
	for _, g := range gs {
		t := make(types.Tuple, 0, len(g.groupVals)+len(a.aggs)+1)
		t = append(t, g.groupVals...)
		for i, spec := range a.aggs {
			t = append(t, g.states[i].partialCols(spec.Kind)...)
		}
		a.ctx.Clock.Charge(a.ctx.Cost.Move)
		a.counters.Out++
		out = append(out, t)
	}
	return out
}

// EmitPartialTo delivers EmitPartial's group revisions downstream,
// columnar when the sink accepts columns: the freshly built partial rows
// transpose into a reused batch in emitFlushLen frames, so a partitioned
// pre-aggregate's flush feeds the boundary exchange's vectorized entry
// instead of fanning out per-group Push calls. Row order, counters, and
// charges are identical to pushing EmitPartial's rows one at a time.
func (a *AggTable) EmitPartialTo(out Sink) {
	rows := a.EmitPartial()
	cs, ok := out.(ColBatchSink)
	if !ok {
		PushAll(out, rows)
		return
	}
	w := a.partialSchema.Len()
	if a.emitBuf == nil || a.emitBuf.Width() != w {
		a.emitBuf = types.NewColBatch(w)
	}
	for len(rows) > 0 {
		n := min(len(rows), emitFlushLen)
		a.emitBuf.AppendRows(rows[:n])
		cs.PushColBatch(a.emitBuf)
		a.emitBuf.Reset()
		rows = rows[n:]
	}
}

// Pseudogroup converts raw tuples into partial-layout singletons: "a
// trivial pseudogroup operator that essentially performs pre-aggregation
// over each successive singleton tuple set ... it costs little more than a
// conventional projection operation" (§3.2). Inserting it wherever a
// pre-aggregation point exists keeps subexpression schemas identical
// across plans that did or did not pre-aggregate.
type Pseudogroup struct {
	ctx      *Context
	groupIdx []int
	aggs     []algebra.AggSpec
	argEvals []expr.Evaluator
	schema   *types.Schema
	out      Sink
	arena    valueArena
	scratch  []types.Tuple
	counters stats.OpCounters
}

// NewPseudogroup builds the operator for input layout in.
func NewPseudogroup(ctx *Context, in *types.Schema, groupBy []string, aggs []algebra.AggSpec, out Sink) (*Pseudogroup, error) {
	p := &Pseudogroup{
		ctx:    ctx,
		aggs:   aggs,
		schema: algebra.GroupSchema(in, groupBy, aggs, true),
		out:    out,
	}
	for _, g := range groupBy {
		i := in.IndexOf(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: pseudogroup column %q not in input", g)
		}
		p.groupIdx = append(p.groupIdx, i)
	}
	for _, spec := range aggs {
		if spec.Arg == nil {
			p.argEvals = append(p.argEvals, nil)
			continue
		}
		ev, err := spec.Arg.Bind(in)
		if err != nil {
			return nil, err
		}
		p.argEvals = append(p.argEvals, ev)
	}
	return p, nil
}

// Schema returns the partial layout produced.
func (p *Pseudogroup) Schema() *types.Schema { return p.schema }

// Counters exposes statistics.
func (p *Pseudogroup) Counters() *stats.OpCounters { return &p.counters }

// Push implements Sink.
func (p *Pseudogroup) Push(t types.Tuple) {
	p.counters.In++
	p.counters.Out++
	p.ctx.Clock.Charge(p.ctx.Cost.Move)
	p.out.Push(p.singleton(t, false))
}

// PushBatch implements BatchSink: singleton partials are carved from an
// arena and forwarded as one batch.
func (p *Pseudogroup) PushBatch(ts []types.Tuple) {
	p.scratch = p.scratch[:0]
	for _, t := range ts {
		p.counters.In++
		p.counters.Out++
		p.ctx.Clock.Charge(p.ctx.Cost.Move)
		p.scratch = append(p.scratch, p.singleton(t, true))
	}
	if len(p.scratch) > 0 {
		PushAll(p.out, p.scratch)
	}
}

// singleton converts one raw tuple to a partial-layout singleton, carving
// storage from the arena when requested.
func (p *Pseudogroup) singleton(t types.Tuple, useArena bool) types.Tuple {
	var out types.Tuple
	if useArena {
		out = p.arena.alloc(p.schema.Len())[:0]
	} else {
		out = make(types.Tuple, 0, p.schema.Len())
	}
	for _, gi := range p.groupIdx {
		out = append(out, t[gi])
	}
	for i, spec := range p.aggs {
		var st aggState
		var v types.Value
		if p.argEvals[i] != nil {
			v = p.argEvals[i](t)
		}
		st.accumulate(spec.Kind, v)
		out = append(out, st.partialCols(spec.Kind)...)
	}
	return out
}

// WindowPreAgg is the paper's adjustable sliding-window pre-aggregation
// operator (§2.3, §6): it partially pre-aggregates every w tuples,
// emitting each window's partial groups downstream, and adapts w to the
// observed coalescing ratio — doubling the window when pre-aggregation is
// effective, halving it (down to pseudogroup pass-through at w=1) when it
// is not. Unlike a traditional pre-aggregate it is fully pipelined.
type WindowPreAgg struct {
	ctx      *Context
	in       *types.Schema
	groupIdx []int
	aggs     []algebra.AggSpec
	argEvals []expr.Evaluator
	schema   *types.Schema
	out      Sink

	// W is the current window size; MinW/MaxW bound adaptation.
	W, MinW, MaxW int
	// GrowBelow/ShrinkAbove are coalescing-ratio thresholds
	// (groups emitted / tuples absorbed in the window).
	GrowBelow, ShrinkAbove float64

	cur  map[string]*aggGroup
	curN int

	keyBuf     []byte
	valScratch []types.Value

	counters stats.OpCounters
	// WindowsFlushed and Coalesced instrument the adaptation policy.
	WindowsFlushed int
	Coalesced      int64 // tuples absorbed minus partials emitted
	// WindowTrace records the window size at each flush (ablation).
	WindowTrace []int
}

// NewWindowPreAgg builds the operator with the default policy (initial
// window 64, bounds [1, 64k], grow below 0.75, shrink above 0.95).
func NewWindowPreAgg(ctx *Context, in *types.Schema, groupBy []string, aggs []algebra.AggSpec, out Sink) (*WindowPreAgg, error) {
	w := &WindowPreAgg{
		ctx:         ctx,
		in:          in,
		aggs:        aggs,
		schema:      algebra.GroupSchema(in, groupBy, aggs, true),
		out:         out,
		W:           64,
		MinW:        1,
		MaxW:        64 * 1024,
		GrowBelow:   0.75,
		ShrinkAbove: 0.95,
		cur:         make(map[string]*aggGroup),
	}
	for _, g := range groupBy {
		i := in.IndexOf(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: window pre-agg column %q not in input", g)
		}
		w.groupIdx = append(w.groupIdx, i)
	}
	for _, spec := range aggs {
		if spec.Arg == nil {
			w.argEvals = append(w.argEvals, nil)
			continue
		}
		ev, err := spec.Arg.Bind(in)
		if err != nil {
			return nil, err
		}
		w.argEvals = append(w.argEvals, ev)
	}
	return w, nil
}

// Schema returns the partial layout produced.
func (w *WindowPreAgg) Schema() *types.Schema { return w.schema }

// Counters exposes statistics.
func (w *WindowPreAgg) Counters() *stats.OpCounters { return &w.counters }

// Push implements Sink.
func (w *WindowPreAgg) Push(t types.Tuple) {
	w.counters.In++
	if w.W <= 1 {
		// Degenerate window: pseudogroup pass-through, costing "little
		// more than a conventional projection operation" (§3.2) — this is
		// what makes the operator low-risk on non-coalescing data (§6).
		w.pushSingleton(t)
		return
	}
	w.ctx.Clock.Charge(w.ctx.Cost.AggUpdate)
	if cap(w.valScratch) < len(w.groupIdx) {
		w.valScratch = make([]types.Value, len(w.groupIdx))
	}
	vals := w.valScratch[:len(w.groupIdx)]
	for i, gi := range w.groupIdx {
		vals[i] = t[gi]
	}
	w.keyBuf = types.AppendKeyAll(w.keyBuf[:0], types.Tuple(vals))
	g, ok := w.cur[string(w.keyBuf)]
	if !ok {
		owned := make([]types.Value, len(vals))
		copy(owned, vals)
		g = &aggGroup{groupVals: owned, states: make([]aggState, len(w.aggs))}
		w.cur[string(w.keyBuf)] = g
	}
	for i, spec := range w.aggs {
		var v types.Value
		if w.argEvals[i] != nil {
			v = w.argEvals[i](t)
		}
		g.states[i].accumulate(spec.Kind, v)
	}
	w.curN++
	if w.curN >= w.W {
		w.flush()
	}
}

// PushBatch implements BatchSink.
func (w *WindowPreAgg) PushBatch(ts []types.Tuple) {
	for _, t := range ts {
		w.Push(t)
	}
}

// pushSingleton converts one tuple into a partial-layout singleton and
// forwards it (the w=1 pass-through mode).
func (w *WindowPreAgg) pushSingleton(t types.Tuple) {
	w.ctx.Clock.Charge(w.ctx.Cost.Move)
	out := make(types.Tuple, 0, len(w.groupIdx)+len(w.aggs)+1)
	for _, gi := range w.groupIdx {
		out = append(out, t[gi])
	}
	for i, spec := range w.aggs {
		var st aggState
		var v types.Value
		if w.argEvals[i] != nil {
			v = w.argEvals[i](t)
		}
		st.accumulate(spec.Kind, v)
		out = append(out, st.partialCols(spec.Kind)...)
	}
	w.counters.Out++
	w.out.Push(out)
}

// flush emits the current window's partial groups and adapts the window
// size to the coalescing ratio.
func (w *WindowPreAgg) flush() {
	if w.curN == 0 {
		return
	}
	keys := make([]string, 0, len(w.cur))
	for k := range w.cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := w.cur[k]
		t := make(types.Tuple, 0, len(g.groupVals)+len(w.aggs)+1)
		t = append(t, g.groupVals...)
		for i, spec := range w.aggs {
			t = append(t, g.states[i].partialCols(spec.Kind)...)
		}
		w.ctx.Clock.Charge(w.ctx.Cost.Move)
		w.counters.Out++
		w.out.Push(t)
	}
	ratio := float64(len(w.cur)) / float64(w.curN)
	w.Coalesced += int64(w.curN - len(w.cur))
	w.WindowsFlushed++
	w.WindowTrace = append(w.WindowTrace, w.W)
	switch {
	case ratio <= w.GrowBelow:
		if w.W*2 <= w.MaxW {
			w.W *= 2
		}
	case ratio >= w.ShrinkAbove:
		if w.W/2 >= w.MinW {
			w.W /= 2
		}
	}
	w.cur = make(map[string]*aggGroup)
	w.curN = 0
}

// Finish flushes the last (possibly short) window.
func (w *WindowPreAgg) Finish() { w.flush() }

package exec

import (
	"github.com/tukwila/adp/internal/state"
	"github.com/tukwila/adp/internal/stats"
	"github.com/tukwila/adp/internal/types"
)

// Sink receives output tuples from a push operator.
type Sink interface {
	Push(t types.Tuple)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(t types.Tuple)

// Push implements Sink.
func (f SinkFunc) Push(t types.Tuple) { f(t) }

// JoinStyle selects the iterator module driving a join node's state
// structures (§3.1): data-availability-driven (pipelined hash),
// build-then-probe (hybrid hash), or nested-loops-style iteration.
// Merge-driven joins have their own node type (MergeJoin).
type JoinStyle uint8

// Join styles.
const (
	// Pipelined is the symmetric (data-availability-driven) hash join:
	// each arriving tuple is inserted into its side's table and probes
	// the opposite table immediately.
	Pipelined JoinStyle = iota
	// BuildThenProbe buffers probe-side (left) tuples until the build
	// side (right) finishes, as in a hybrid hash join.
	BuildThenProbe
	// NestedLoops buffers the inner (right) side in a list and scans it
	// per outer tuple.
	NestedLoops
)

// String names the style.
func (s JoinStyle) String() string {
	switch s {
	case Pipelined:
		return "pipelined-hash"
	case BuildThenProbe:
		return "hybrid-hash"
	default:
		return "nested-loops"
	}
}

// HashJoin is a binary equijoin push node. Both inputs are buffered in
// state structures — the ADP requirement that "every plan must buffer the
// source data fed into it at the leaves, so this data can be joined with
// data in the other plans" (§3.4) — and those structures are exposed for
// reuse by stitch-up plans.
type HashJoin struct {
	Style    JoinStyle
	ctx      *Context
	out      Sink
	leftKey  []int
	rightKey []int
	schema   *types.Schema

	left  state.Keyed // buffered left tuples (hash or list)
	right state.Keyed

	// leftHT/rightHT are the concrete hash tables behind left/right (nil
	// for nested loops), cached so the batched fast path can use the
	// hashed insert/probe APIs without per-tuple type assertions.
	leftHT  *state.HashTable
	rightHT *state.HashTable

	leftList  *state.List // nested-loops storage
	rightList *state.List

	pendingProbes []types.Tuple // BuildThenProbe: left tuples awaiting build
	leftDone      bool
	rightDone     bool

	// Batched-execution scratch: the reused probe-key buffer and the
	// emitter a batch's outputs accumulate into before one downstream
	// delivery.
	keyScratch types.Tuple
	em         BatchEmitter

	// Columnar-execution scratch: the reused batch hash vector and the
	// arena-backed materializer turning columnar input rows into the
	// tuples the state structures retain.
	hashVec []uint64
	colIn   colDelivery

	// Columnar-emit scratch: colOut caches the one downstream type
	// assertion (nil when the sink cannot take columns), hits gathers
	// columnar probe hits into the reused output batch, and leftWidth
	// locates the left/right halves of the output layout.
	colOut    ColBatchSink
	hits      hitEmitter
	leftWidth int

	// Delta-maintenance state (standing queries): deletes build into
	// lazily created negative tables — the z-set representation, where a
	// side's effective multiset is its main state minus its negative
	// state — and signed emits leave through sout, which bridges the
	// columnar hit gatherer to the downstream DeltaSink.
	negLeftHT    *state.HashTable
	negRightHT   *state.HashTable
	negLeftList  *state.List
	negRightList *state.List
	sout         *signedOut

	counters stats.OpCounters
}

// NewHashJoin creates a join node. leftKey/rightKey are column positions
// of the equijoin keys in the respective input layouts; leftSchema and
// rightSchema describe the inputs; out receives concatenated
// (left ++ right) tuples.
func NewHashJoin(ctx *Context, style JoinStyle, leftSchema, rightSchema *types.Schema, leftKey, rightKey []int, out Sink) *HashJoin {
	j := &HashJoin{
		Style:     style,
		ctx:       ctx,
		out:       out,
		leftKey:   leftKey,
		rightKey:  rightKey,
		schema:    leftSchema.Concat(rightSchema),
		leftWidth: leftSchema.Len(),
	}
	j.colOut, _ = out.(ColBatchSink)
	if style == NestedLoops {
		j.leftList = state.NewList(leftSchema)
		j.rightList = state.NewList(rightSchema)
	} else {
		j.leftHT = state.NewHashTable(leftSchema, leftKey)
		j.rightHT = state.NewHashTable(rightSchema, rightKey)
		j.left, j.right = j.leftHT, j.rightHT
	}
	return j
}

// Schema returns the output layout.
func (j *HashJoin) Schema() *types.Schema { return j.schema }

// SizeTables allocates fixed-bucket hash tables from the optimizer's
// cardinality estimates, reproducing Tukwila's behaviour: table memory can
// grow, but bucket counts are fixed at creation, so an under-estimated
// input suffers bucket collisions for the rest of the query (§4.4).
// No-op for nested-loops joins.
func (j *HashJoin) SizeTables(estLeft, estRight float64) {
	if j.Style == NestedLoops {
		return
	}
	size := func(est float64) int {
		if est < 64 {
			return 64
		}
		if est > 1<<26 {
			return 1 << 26
		}
		return int(est)
	}
	lt := state.NewHashTableSized(j.left.Schema(), j.leftKey, size(estLeft))
	lt.Fixed = true
	rt := state.NewHashTableSized(j.right.Schema(), j.rightKey, size(estRight))
	rt.Fixed = true
	j.left, j.right = lt, rt
	j.leftHT, j.rightHT = lt, rt
}

// Counters exposes the operator's statistics block (§3.3).
func (j *HashJoin) Counters() *stats.OpCounters { return &j.counters }

// Tables exposes the buffered state structures for stitch-up reuse; nil
// for nested-loops (whose lists are exposed via Lists).
func (j *HashJoin) Tables() (left, right state.Keyed) { return j.left, j.right }

// Lists exposes nested-loops buffers.
func (j *HashJoin) Lists() (left, right *state.List) { return j.leftList, j.rightList }

// keyValues extracts the key columns of t.
func keyValues(t types.Tuple, cols []int) []types.Value {
	out := make([]types.Value, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// PushLeft feeds one tuple into the left input.
func (j *HashJoin) PushLeft(t types.Tuple) {
	j.counters.In++
	j.counters.InLeft++
	switch j.Style {
	case Pipelined:
		j.left.Insert(t)
		j.ctx.Clock.Charge(j.ctx.Cost.HashInsert)
		j.probeRight(t)
	case BuildThenProbe:
		j.left.Insert(t)
		j.ctx.Clock.Charge(j.ctx.Cost.HashInsert)
		if j.rightDone {
			j.probeRight(t)
		} else {
			j.pendingProbes = append(j.pendingProbes, t)
		}
	case NestedLoops:
		j.leftList.Insert(t)
		j.ctx.Clock.Charge(j.ctx.Cost.Move)
		j.scanRight(t)
	}
}

// joinSide exposes one input of a HashJoin as a (batch-capable) sink, so
// plan lowering can wire whole batches into either side.
type joinSide struct {
	j    *HashJoin
	left bool
}

// Push implements Sink.
func (s joinSide) Push(t types.Tuple) {
	if s.left {
		s.j.PushLeft(t)
	} else {
		s.j.PushRight(t)
	}
}

// PushBatch implements BatchSink.
func (s joinSide) PushBatch(ts []types.Tuple) {
	if s.left {
		s.j.PushLeftBatch(ts)
	} else {
		s.j.PushRightBatch(ts)
	}
}

// LeftSink returns the join's left input as a batch-capable sink.
func (j *HashJoin) LeftSink() Sink { return joinSide{j: j, left: true} }

// RightSink returns the join's right input as a batch-capable sink.
func (j *HashJoin) RightSink() Sink { return joinSide{j: j, left: false} }

// PushLeftBatch feeds a batch of tuples into the left input. For hash
// styles this is the allocation-amortized fast path: each tuple's key is
// hashed exactly once (shared between the build-side insert and the
// opposite-side probe), probe keys live in a reused scratch buffer, join
// results are carved from an arena, and the batch's outputs are delivered
// downstream in one call. Counters, clock charges, and output order are
// identical to pushing the tuples one at a time.
//
//adp:hotpath gated by BenchmarkPipelinedJoinPush (scripts/check_allocs.sh)
func (j *HashJoin) PushLeftBatch(ts []types.Tuple) {
	if j.Style == NestedLoops {
		for _, t := range ts {
			j.PushLeft(t)
		}
		return
	}
	j.beginBatch()
	for _, t := range ts {
		j.counters.In++
		j.counters.InLeft++
		h := t.HashKey(j.leftKey)
		j.leftHT.InsertHashed(h, t)
		j.ctx.Clock.Charge(j.ctx.Cost.HashInsert)
		if j.Style == Pipelined || j.rightDone {
			j.probeRightHashed(h, t)
		} else {
			j.pendingProbes = append(j.pendingProbes, t)
		}
	}
	j.endBatch()
}

// PushRightBatch feeds a batch of tuples into the right input.
//
//adp:hotpath gated by BenchmarkPipelinedJoinPush (scripts/check_allocs.sh)
func (j *HashJoin) PushRightBatch(ts []types.Tuple) {
	if j.Style == NestedLoops {
		for _, t := range ts {
			j.PushRight(t)
		}
		return
	}
	j.beginBatch()
	for _, t := range ts {
		j.counters.In++
		j.counters.InRight++
		h := t.HashKey(j.rightKey)
		j.rightHT.InsertHashed(h, t)
		j.ctx.Clock.Charge(j.ctx.Cost.HashInsert)
		if j.Style == Pipelined {
			j.probeLeftHashed(h, t)
		}
		// BuildThenProbe: probes wait for FinishRight.
	}
	j.endBatch()
}

// beginBatch switches emits to the arena + output-buffer path.
func (j *HashJoin) beginBatch() { j.em.Begin() }

// endBatch delivers the accumulated outputs downstream in one call.
func (j *HashJoin) endBatch() { j.em.Flush(j.out) }

// keyFor extracts t's key columns into the reused scratch buffer. The
// result is only valid until the next keyFor call; probe callees do not
// retain it.
func (j *HashJoin) keyFor(t types.Tuple, cols []int) types.Tuple {
	if cap(j.keyScratch) < len(cols) {
		j.keyScratch = make(types.Tuple, len(cols))
	}
	k := j.keyScratch[:len(cols)]
	for i, c := range cols {
		k[i] = t[c]
	}
	return k
}

// probeRightHashed probes the right table with lt's key and its
// precomputed hash, zero-allocation except for emitted results.
func (j *HashJoin) probeRightHashed(h uint64, lt types.Tuple) {
	key := j.keyFor(lt, j.leftKey)
	work := 1.0 + float64(j.rightHT.ChainLenHashed(h))
	j.ctx.Clock.Charge(work * j.ctx.Cost.HashProbe)
	j.rightHT.ProbeHashed(h, key, func(rt types.Tuple) bool {
		j.emit(lt, rt)
		return true
	})
}

// probeLeftHashed is the mirror of probeRightHashed.
func (j *HashJoin) probeLeftHashed(h uint64, rt types.Tuple) {
	key := j.keyFor(rt, j.rightKey)
	work := 1.0 + float64(j.leftHT.ChainLenHashed(h))
	j.ctx.Clock.Charge(work * j.ctx.Cost.HashProbe)
	j.leftHT.ProbeHashed(h, key, func(lt types.Tuple) bool {
		j.emit(lt, rt)
		return true
	})
}

// PushRight feeds one tuple into the right input.
func (j *HashJoin) PushRight(t types.Tuple) {
	j.counters.In++
	j.counters.InRight++
	switch j.Style {
	case Pipelined:
		j.right.Insert(t)
		j.ctx.Clock.Charge(j.ctx.Cost.HashInsert)
		j.probeLeft(t)
	case BuildThenProbe:
		j.right.Insert(t)
		j.ctx.Clock.Charge(j.ctx.Cost.HashInsert)
		// Probes wait for FinishRight.
	case NestedLoops:
		j.rightList.Insert(t)
		j.ctx.Clock.Charge(j.ctx.Cost.Move)
		// A late inner tuple must join with all buffered outers
		// (symmetric nested loops keeps results complete regardless of
		// arrival interleaving).
		j.scanLeft(t)
	}
}

// chargeProbe accounts the scan work of one probe: hashing plus walking
// the bucket chain. Collisions in under-sized fixed tables make this the
// dominant cost of a mis-planned query.
func (j *HashJoin) chargeProbe(table state.Keyed, key []types.Value) {
	work := 1.0
	if ht, ok := table.(*state.HashTable); ok {
		work += float64(ht.ChainLen(key))
	}
	j.ctx.Clock.Charge(work * j.ctx.Cost.HashProbe)
}

func (j *HashJoin) probeRight(lt types.Tuple) {
	key := keyValues(lt, j.leftKey)
	j.chargeProbe(j.right, key)
	j.right.Probe(key, func(rt types.Tuple) bool {
		j.emit(lt, rt)
		return true
	})
}

func (j *HashJoin) probeLeft(rt types.Tuple) {
	key := keyValues(rt, j.rightKey)
	j.chargeProbe(j.left, key)
	j.left.Probe(key, func(lt types.Tuple) bool {
		j.emit(lt, rt)
		return true
	})
}

func (j *HashJoin) scanRight(lt types.Tuple) {
	j.rightList.Scan(func(rt types.Tuple) bool {
		j.ctx.Clock.Charge(j.ctx.Cost.Compare)
		if lt.KeyEquals(j.leftKey, rt, j.rightKey) {
			j.emit(lt, rt)
		}
		return true
	})
}

func (j *HashJoin) scanLeft(rt types.Tuple) {
	j.leftList.Scan(func(lt types.Tuple) bool {
		j.ctx.Clock.Charge(j.ctx.Cost.Compare)
		if lt.KeyEquals(j.leftKey, rt, j.rightKey) {
			j.emit(lt, rt)
		}
		return true
	})
}

func (j *HashJoin) emit(lt, rt types.Tuple) {
	j.ctx.Clock.Charge(j.ctx.Cost.Move)
	j.counters.Out++
	j.em.EmitConcat(j.out, lt, rt)
}

// FinishLeft signals end of the left input.
func (j *HashJoin) FinishLeft() { j.leftDone = true }

// FinishRight signals end of the right (build) input; a build-then-probe
// join drains its buffered probes here.
func (j *HashJoin) FinishRight() {
	j.rightDone = true
	if j.Style == BuildThenProbe {
		for _, lt := range j.pendingProbes {
			j.probeRight(lt)
		}
		j.pendingProbes = nil
	}
}

// Filter is a push node applying a bound predicate.
type Filter struct {
	ctx      *Context
	pred     func(types.Tuple) bool
	out      Sink
	scratch  []types.Tuple
	counters stats.OpCounters

	// Columnar scratch: survivor gather batch, predicate row view, and
	// downstream delivery machinery.
	colScratch *types.ColBatch
	rowView    types.Tuple
	del        colDelivery
	dfw        DeltaForward
}

// NewFilter builds a filter node.
func NewFilter(ctx *Context, pred func(types.Tuple) bool, out Sink) *Filter {
	return &Filter{ctx: ctx, pred: pred, out: out}
}

// Push implements Sink.
func (f *Filter) Push(t types.Tuple) {
	f.counters.In++
	f.ctx.Clock.Charge(f.ctx.Cost.Compare)
	if f.pred(t) {
		f.counters.Out++
		f.out.Push(t)
	}
}

// PushBatch implements BatchSink: survivors are collected into a reused
// scratch batch and forwarded in one downstream call.
func (f *Filter) PushBatch(ts []types.Tuple) {
	f.scratch = f.scratch[:0]
	for _, t := range ts {
		f.counters.In++
		f.ctx.Clock.Charge(f.ctx.Cost.Compare)
		if f.pred(t) {
			f.counters.Out++
			f.scratch = append(f.scratch, t)
		}
	}
	if len(f.scratch) > 0 {
		PushAll(f.out, f.scratch)
	}
}

// Counters exposes statistics.
func (f *Filter) Counters() *stats.OpCounters { return &f.counters }

// Project is a push node permuting/trimming columns via an adapter.
type Project struct {
	ctx      *Context
	adapter  *types.Adapter
	out      Sink
	arena    valueArena
	scratch  []types.Tuple
	counters stats.OpCounters

	// Columnar scratch: the zero-copy aliased output batch and downstream
	// delivery machinery.
	colScratch *types.ColBatch
	del        colDelivery
	dfw        DeltaForward
}

// NewProject builds a projection node from an adapter.
func NewProject(ctx *Context, adapter *types.Adapter, out Sink) *Project {
	return &Project{ctx: ctx, adapter: adapter, out: out}
}

// Push implements Sink.
func (p *Project) Push(t types.Tuple) {
	p.counters.In++
	p.counters.Out++
	p.ctx.Clock.Charge(p.ctx.Cost.Move)
	p.out.Push(p.adapter.Adapt(t))
}

// PushBatch implements BatchSink. Output tuples are carved from an arena
// (projections may be retained downstream, so storage is never reused,
// just allocated in slabs) and forwarded as one batch.
func (p *Project) PushBatch(ts []types.Tuple) {
	width := p.adapter.To().Len()
	p.scratch = p.scratch[:0]
	for _, t := range ts {
		p.counters.In++
		p.counters.Out++
		p.ctx.Clock.Charge(p.ctx.Cost.Move)
		p.scratch = append(p.scratch, p.adapter.AdaptInto(p.arena.alloc(width), t))
	}
	if len(p.scratch) > 0 {
		PushAll(p.out, p.scratch)
	}
}

// Counters exposes statistics.
func (p *Project) Counters() *stats.OpCounters { return &p.counters }

// Combine unions several producers into one sink, counting pass-through
// (the paper's combine operator, §3).
type Combine struct {
	out      Sink
	counters stats.OpCounters
	del      colDelivery
	dfw      DeltaForward
}

// NewCombine builds a combine node.
func NewCombine(out Sink) *Combine { return &Combine{out: out} }

// Push implements Sink.
func (c *Combine) Push(t types.Tuple) {
	c.counters.In++
	c.counters.Out++
	c.out.Push(t)
}

// PushBatch implements BatchSink (pass-through).
func (c *Combine) PushBatch(ts []types.Tuple) {
	c.counters.In += int64(len(ts))
	c.counters.Out += int64(len(ts))
	PushAll(c.out, ts)
}

// Counters exposes statistics.
func (c *Combine) Counters() *stats.OpCounters { return &c.counters }

// Queue buffers tuples between producer and consumer, modelling the
// inter-thread queues of Tukwila's engine (the "Q" boxes of Figure 4).
// Drain delivers buffered tuples to the downstream sink.
type Queue struct {
	buf      []types.Tuple
	out      Sink
	counters stats.OpCounters
}

// NewQueue builds a queue in front of out.
func NewQueue(out Sink) *Queue { return &Queue{out: out} }

// Push implements Sink (enqueue).
func (q *Queue) Push(t types.Tuple) {
	q.counters.In++
	q.buf = append(q.buf, t)
}

// PushBatch implements BatchSink (bulk enqueue).
func (q *Queue) PushBatch(ts []types.Tuple) {
	q.counters.In += int64(len(ts))
	q.buf = append(q.buf, ts...)
}

// Len returns the queued count.
func (q *Queue) Len() int { return len(q.buf) }

// Drain flushes up to max tuples (max<=0 flushes all) as one batch. The
// drained prefix is compacted out of the backing array (rather than
// re-slicing past it, which would pin the drained tuples in memory and
// leak the array's head for the queue's lifetime) and the vacated tail is
// cleared so drained tuples become collectable as soon as downstream is
// done with them.
func (q *Queue) Drain(max int) int {
	n := len(q.buf)
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return 0
	}
	q.counters.Out += int64(n)
	PushAll(q.out, q.buf[:n])
	rest := copy(q.buf, q.buf[n:])
	clear(q.buf[rest:])
	q.buf = q.buf[:rest]
	return n
}

// Counters exposes statistics.
func (q *Queue) Counters() *stats.OpCounters { return &q.counters }

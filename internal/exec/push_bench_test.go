package exec

import (
	"testing"

	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/types"
)

// BenchmarkPipelinedJoinPush compares tuple-at-a-time vs batched push
// through a symmetric pipelined hash join — the engine's innermost loop.
// allocs/op is the headline metric: the batched path amortizes probe-key,
// probe-index, and join-result allocations across the batch.
func BenchmarkPipelinedJoinPush(b *testing.B) {
	const batch = 64
	mkRows := func(n int) ([]types.Tuple, []types.Tuple) {
		dom := int64(max(n/4, 4))
		return randTuples(n, dom, 7, rRow), randTuples(n, dom, 8, sRow)
	}
	b.Run("tuple-at-a-time", func(b *testing.B) {
		ls, rs := mkRows(b.N)
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.PushLeft(ls[i])
			j.PushRight(rs[i])
		}
	})
	b.Run("batch", func(b *testing.B) {
		ls, rs := mkRows(b.N)
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			end := min(i+batch, b.N)
			j.PushLeftBatch(ls[i:end])
			j.PushRightBatch(rs[i:end])
		}
	})
}

// BenchmarkAggTableAbsorb tracks the group-by absorption hot path (byte
// key codec + map[string(buf)] lookup; zero steady-state allocations once
// all groups exist).
func BenchmarkAggTableAbsorb(b *testing.B) {
	rows := randTuples(1<<14, 512, 9, rRow)
	agg, err := NewAggTable(NewContext(), rSchema, []string{"r.k"},
		[]algebra.AggSpec{{Kind: algebra.AggCount, As: "n"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.AbsorbRaw(rows[i&(1<<14-1)])
	}
}

// BenchmarkPipelineSegmentPush pushes batches through Filter → Join →
// AggTable, the shape of a lowered phase plan.
func BenchmarkPipelineSegmentPush(b *testing.B) {
	const batch = 64
	full := rSchema.Concat(sSchema)
	run := func(b *testing.B, batched bool) {
		ls := randTuples(b.N, int64(max(b.N/4, 4)), 10, rRow)
		rs := randTuples(b.N, int64(max(b.N/4, 4)), 11, sRow)
		ctx := NewContext()
		agg, err := NewAggTable(ctx, full, []string{"r.k"},
			[]algebra.AggSpec{{Kind: algebra.AggCount, As: "n"}})
		if err != nil {
			b.Fatal(err)
		}
		j := NewHashJoin(ctx, Pipelined, rSchema, sSchema, []int{0}, []int{0}, agg)
		f := NewFilter(ctx, func(tp types.Tuple) bool { return tp[1].I%5 != 0 }, j.LeftSink())
		b.ReportAllocs()
		b.ResetTimer()
		if batched {
			for i := 0; i < b.N; i += batch {
				end := min(i+batch, b.N)
				f.PushBatch(ls[i:end])
				j.PushRightBatch(rs[i:end])
			}
		} else {
			for i := 0; i < b.N; i++ {
				f.Push(ls[i])
				j.PushRight(rs[i])
			}
		}
	}
	b.Run("tuple-at-a-time", func(b *testing.B) { run(b, false) })
	b.Run("batch", func(b *testing.B) { run(b, true) })
}

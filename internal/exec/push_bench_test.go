package exec

import (
	"fmt"
	"testing"

	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/expr"
	"github.com/tukwila/adp/internal/types"
)

// BenchmarkPipelinedJoinPush compares tuple-at-a-time vs batched push
// through a symmetric pipelined hash join — the engine's innermost loop.
// allocs/op is the headline metric: the batched path amortizes probe-key,
// probe-index, and join-result allocations across the batch.
func BenchmarkPipelinedJoinPush(b *testing.B) {
	const batch = 64
	mkRows := func(n int) ([]types.Tuple, []types.Tuple) {
		dom := int64(max(n/4, 4))
		return randTuples(n, dom, 7, rRow), randTuples(n, dom, 8, sRow)
	}
	b.Run("tuple-at-a-time", func(b *testing.B) {
		ls, rs := mkRows(b.N)
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.PushLeft(ls[i])
			j.PushRight(rs[i])
		}
	})
	b.Run("batch", func(b *testing.B) {
		ls, rs := mkRows(b.N)
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			end := min(i+batch, b.N)
			j.PushLeftBatch(ls[i:end])
			j.PushRightBatch(rs[i:end])
		}
	})
	b.Run("columnar", func(b *testing.B) {
		ls, rs := mkRows(b.N)
		lbs := toColBatches(ls, batch)
		rbs := toColBatches(rs, batch)
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := range lbs {
			j.PushLeftColBatch(lbs[i])
			j.PushRightColBatch(rbs[i])
		}
	})

	// Wide-schema variants (12 columns per side, 24-column join output):
	// the regime where layout matters most. The batch path pays one
	// arena-backed 24-slot concat per emit; the columnar path gathers hit
	// columns into reused output vectors and never forms the row.
	wl, wr := wideSchemas(wideCols)
	mkWide := func(n int) ([]types.Tuple, []types.Tuple) {
		dom := int64(max(n/4, 4))
		return randTuples(n, dom, 7, wideRow), randTuples(n, dom, 8, wideRow)
	}
	b.Run("batch-wide", func(b *testing.B) {
		ls, rs := mkWide(b.N)
		j := NewHashJoin(NewContext(), Pipelined, wl, wr, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			end := min(i+batch, b.N)
			j.PushLeftBatch(ls[i:end])
			j.PushRightBatch(rs[i:end])
		}
	})
	b.Run("columnar-wide", func(b *testing.B) {
		ls, rs := mkWide(b.N)
		lbs := toColBatches(ls, batch)
		rbs := toColBatches(rs, batch)
		j := NewHashJoin(NewContext(), Pipelined, wl, wr, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := range lbs {
			j.PushLeftColBatch(lbs[i])
			j.PushRightColBatch(rbs[i])
		}
	})
}

// wideCols is the wide-schema width per join side (≥12 columns — the
// payload-heavy regime the columnar layout targets).
const wideCols = 12

// wideSchemas builds two wideCols-column schemas (key first, then
// payload columns).
func wideSchemas(w int) (*types.Schema, *types.Schema) {
	mk := func(prefix string) *types.Schema {
		cols := make([]types.Column, w)
		cols[0] = types.Column{Name: prefix + ".k", Kind: types.KindInt}
		for i := 1; i < w; i++ {
			cols[i] = types.Column{Name: fmt.Sprintf("%s.p%d", prefix, i), Kind: types.KindInt}
		}
		return types.NewSchema(cols...)
	}
	return mk("wl"), mk("wr")
}

// wideRow builds a wideCols-column tuple: join key then payload values.
func wideRow(k, v int64) types.Tuple {
	t := make(types.Tuple, wideCols)
	t[0] = types.Int(k)
	for i := 1; i < wideCols; i++ {
		t[i] = types.Int(v + int64(i))
	}
	return t
}

// toColBatches transposes rows into columnar batches of the given size
// (bench setup; the driver does this transposition per same-source run).
func toColBatches(rows []types.Tuple, batch int) []*types.ColBatch {
	if len(rows) == 0 {
		return nil
	}
	var out []*types.ColBatch
	for i := 0; i < len(rows); i += batch {
		out = append(out, types.FromRows(rows[i:min(i+batch, len(rows))], len(rows[0])))
	}
	return out
}

// BenchmarkHashKeys tracks the vectorized key-hash kernel itself: one
// op hashes a whole batch's key columns into a reused hash vector
// (column-at-a-time over struct-of-arrays storage; 0 allocs/op).
func BenchmarkHashKeys(b *testing.B) {
	const rows = 1024
	ts := randTuples(rows, 256, 12, rRow)
	cb := types.FromRows(ts, 2)
	cols := []int{0, 1}
	vec := types.HashKeys(nil, cb, cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec = types.HashKeys(vec, cb, cols)
	}
	_ = vec
}

// BenchmarkMergeJoinPush compares tuple-at-a-time vs batched push through
// the ordered merge join — the hot path of the complementary pair when
// source data arrives (mostly) sorted. The batch path shares one hash per
// insert and amortizes emit allocations in the arena.
func BenchmarkMergeJoinPush(b *testing.B) {
	const batch = 64
	run := func(b *testing.B, batched bool) {
		// Ascending unique keys both sides: every push closes a group and
		// the join streams 1:1 matches.
		ls := make([]types.Tuple, b.N)
		rs := make([]types.Tuple, b.N)
		for i := 0; i < b.N; i++ {
			ls[i] = rRow(int64(i), int64(i))
			rs[i] = sRow(int64(i), int64(i))
		}
		m := NewMergeJoin(NewContext(), rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		if batched {
			for i := 0; i < b.N; i += batch {
				end := min(i+batch, b.N)
				if err := m.PushLeftBatch(ls[i:end]); err != nil {
					b.Fatal(err)
				}
				if err := m.PushRightBatch(rs[i:end]); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for i := 0; i < b.N; i++ {
				if err := m.PushLeft(ls[i]); err != nil {
					b.Fatal(err)
				}
				if err := m.PushRight(rs[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("tuple-at-a-time", func(b *testing.B) { run(b, false) })
	b.Run("batch", func(b *testing.B) { run(b, true) })
}

// BenchmarkAggTableAbsorb tracks the group-by absorption hot path (byte
// key codec + map[string(buf)] lookup; zero steady-state allocations once
// all groups exist).
func BenchmarkAggTableAbsorb(b *testing.B) {
	rows := randTuples(1<<14, 512, 9, rRow)
	agg, err := NewAggTable(NewContext(), rSchema, []string{"r.k"},
		[]algebra.AggSpec{{Kind: algebra.AggCount, As: "n"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.AbsorbRaw(rows[i&(1<<14-1)])
	}
}

// BenchmarkDeltaPropagation tracks the standing-query maintenance hot
// paths (PR 10): the z-set join re-probe (a signed batch builds into
// its side's delta state and probes the opposite side's live + negative
// tables) and the signed aggregate revision cycle (PushDelta absorb +
// EmitRevisionsTo retraction/assertion frames). Both alternate signs so
// assertion and retraction orderings are exercised every pair of
// batches. Budgets in scripts/check_allocs.sh: <= 2 allocs/op each,
// an op being one delta row.
func BenchmarkDeltaPropagation(b *testing.B) {
	const batch = 64
	b.Run("join", func(b *testing.B) {
		dom := int64(max(b.N/4, 4))
		lbs := toColBatches(randTuples(b.N, dom, 7, rRow), batch)
		rbs := toColBatches(randTuples(b.N, dom, 8, sRow), batch)
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		b.ReportAllocs()
		b.ResetTimer()
		sign := 1
		for i := range lbs {
			j.PushDeltaLeft(lbs[i], sign)
			j.PushDeltaRight(rbs[i], sign)
			sign = -sign
		}
	})
	b.Run("agg", func(b *testing.B) {
		bs := toColBatches(randTuples(1<<12, 512, 9, rRow), batch)
		agg, err := NewAggTable(NewContext(), rSchema, []string{"r.k"},
			[]algebra.AggSpec{
				{Kind: algebra.AggSum, Arg: expr.Column("r.a"), As: "sm"},
				{Kind: algebra.AggCount, As: "n"},
			})
		if err != nil {
			b.Fatal(err)
		}
		agg.EnableMaintenance()
		sink := discardSink{}
		// Warm every group so the steady state revises rather than creates.
		for _, cb := range bs {
			agg.PushDelta(cb, 1)
		}
		agg.EmitRevisionsTo(sink)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += 2 * batch {
			cb := bs[(i/(2*batch))%len(bs)]
			agg.PushDelta(cb, 1)
			agg.EmitRevisionsTo(sink)
			agg.PushDelta(cb, -1)
			agg.EmitRevisionsTo(sink)
		}
	})
}

// BenchmarkPipelineSegmentPush pushes batches through Filter → Join →
// AggTable, the shape of a lowered phase plan.
func BenchmarkPipelineSegmentPush(b *testing.B) {
	const batch = 64
	full := rSchema.Concat(sSchema)
	run := func(b *testing.B, batched bool) {
		ls := randTuples(b.N, int64(max(b.N/4, 4)), 10, rRow)
		rs := randTuples(b.N, int64(max(b.N/4, 4)), 11, sRow)
		ctx := NewContext()
		agg, err := NewAggTable(ctx, full, []string{"r.k"},
			[]algebra.AggSpec{{Kind: algebra.AggCount, As: "n"}})
		if err != nil {
			b.Fatal(err)
		}
		j := NewHashJoin(ctx, Pipelined, rSchema, sSchema, []int{0}, []int{0}, agg)
		f := NewFilter(ctx, func(tp types.Tuple) bool { return tp[1].I%5 != 0 }, j.LeftSink())
		b.ReportAllocs()
		b.ResetTimer()
		if batched {
			for i := 0; i < b.N; i += batch {
				end := min(i+batch, b.N)
				f.PushBatch(ls[i:end])
				j.PushRightBatch(rs[i:end])
			}
		} else {
			for i := 0; i < b.N; i++ {
				f.Push(ls[i])
				j.PushRight(rs[i])
			}
		}
	}
	b.Run("tuple-at-a-time", func(b *testing.B) { run(b, false) })
	b.Run("batch", func(b *testing.B) { run(b, true) })
}

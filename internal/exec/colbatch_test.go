package exec

import (
	"math"
	"testing"

	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
)

// feedJoinCol mirrors feedJoin's chunked alternating delivery, but
// transposes each chunk into a columnar batch first.
func feedJoinCol(j *HashJoin, ls, rs []types.Tuple, chunkSize int) {
	i, k := 0, 0
	lb, rb := types.NewColBatch(2), types.NewColBatch(2)
	for i < len(ls) || k < len(rs) {
		if i < len(ls) {
			end := min(i+chunkSize, len(ls))
			lb.Reset()
			lb.AppendRows(ls[i:end])
			j.PushLeftColBatch(lb)
			i = end
		}
		if k < len(rs) {
			end := min(k+chunkSize, len(rs))
			rb.Reset()
			rb.AppendRows(rs[k:end])
			j.PushRightColBatch(rb)
			k = end
		}
	}
	j.FinishLeft()
	j.FinishRight()
}

// TestColumnarMatchesRowAndTuple is the three-way equivalence pin for the
// join: tuple-at-a-time, row batches, and columnar batches must produce
// byte-identical outputs in identical order with identical counters.
// Virtual-clock totals agree up to float summation order (the columnar
// path charges a batch's inserts ahead of its probes).
func TestColumnarMatchesRowAndTuple(t *testing.T) {
	ls := randTuples(2000, 300, 1, rRow)
	rs := randTuples(2000, 300, 2, sRow)
	for _, style := range []JoinStyle{Pipelined, BuildThenProbe, NestedLoops} {
		run := func(mode string) (*collectSink, *HashJoin, *Context) {
			ctx := NewContext()
			out := &collectSink{}
			j := NewHashJoin(ctx, style, rSchema, sSchema, []int{0}, []int{0}, out)
			switch mode {
			case "tuple":
				feedJoin(j, ls, rs, 64, false)
			case "rows":
				feedJoin(j, ls, rs, 64, true)
			case "columnar":
				feedJoinCol(j, ls, rs, 64)
			}
			return out, j, ctx
		}
		outT, jT, ctxT := run("tuple")
		for _, mode := range []string{"rows", "columnar"} {
			out, j, ctx := run(mode)
			if len(out.rows) != len(outT.rows) || len(out.rows) == 0 {
				t.Fatalf("%v/%s: %d vs %d output tuples", style, mode, len(out.rows), len(outT.rows))
			}
			for i := range out.rows {
				if out.rows[i].String() != outT.rows[i].String() {
					t.Fatalf("%v/%s: output %d differs: %v vs %v", style, mode, i, out.rows[i], outT.rows[i])
				}
			}
			if *j.Counters() != *jT.Counters() {
				t.Fatalf("%v/%s: counters differ: %+v vs %+v", style, mode, j.Counters(), jT.Counters())
			}
			if diff := math.Abs(ctx.Clock.CPU - ctxT.Clock.CPU); diff > 1e-9*ctxT.Clock.CPU {
				t.Fatalf("%v/%s: clocks differ: %v vs %v", style, mode, ctx.Clock.CPU, ctxT.Clock.CPU)
			}
		}
	}
}

// TestColumnarPipelineSegment pushes columnar batches through a
// Filter → Project → HashJoin → AggTable segment (the shape of a lowered
// phase plan, with the projection exercising the zero-copy column
// aliasing) and checks the final aggregate, all counters, and the clock
// against the tuple-at-a-time execution.
func TestColumnarPipelineSegment(t *testing.T) {
	// Project r(k,a) -> (a,k) then back so the join still keys on column 1
	// of the projected layout.
	projSchema := types.NewSchema(
		types.Column{Name: "r.a", Kind: types.KindInt},
		types.Column{Name: "r.k", Kind: types.KindInt},
	)
	full := projSchema.Concat(sSchema)
	aggs := []algebra.AggSpec{{Kind: algebra.AggCount, As: "n"}}
	build := func(t *testing.T) (*Filter, *HashJoin, *AggTable, *Context) {
		t.Helper()
		ctx := NewContext()
		agg, err := NewAggTable(ctx, full, []string{"r.k"}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		j := NewHashJoin(ctx, Pipelined, projSchema, sSchema, []int{1}, []int{0}, agg)
		ad, err := types.NewAdapter(rSchema, projSchema)
		if err != nil {
			t.Fatal(err)
		}
		p := NewProject(ctx, ad, j.LeftSink())
		f := NewFilter(ctx, func(tp types.Tuple) bool { return tp[1].I%3 != 0 }, p)
		return f, j, agg, ctx
	}
	ls := randTuples(3000, 200, 3, rRow)
	rs := randTuples(3000, 200, 4, sRow)

	f1, j1, a1, ctx1 := build(t)
	for i := range ls {
		f1.Push(ls[i])
		j1.PushRight(rs[i])
	}
	f2, j2, a2, ctx2 := build(t)
	lb, rb := types.NewColBatch(2), types.NewColBatch(2)
	for i := 0; i < len(ls); i += 128 {
		end := min(i+128, len(ls))
		lb.Reset()
		lb.AppendRows(ls[i:end])
		f2.PushColBatch(lb)
		rb.Reset()
		rb.AppendRows(rs[i:end])
		j2.PushRightColBatch(rb)
	}

	r1, r2 := a1.EmitFinal(), a2.EmitFinal()
	if len(r1) != len(r2) || len(r1) == 0 {
		t.Fatalf("group counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Fatalf("group %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	if *a1.Counters() != *a2.Counters() || *j1.Counters() != *j2.Counters() || *f1.Counters() != *f2.Counters() {
		t.Fatal("operator counters differ between tuple and columnar runs")
	}
	if diff := math.Abs(ctx1.Clock.CPU - ctx2.Clock.CPU); diff > 1e-9*ctx1.Clock.CPU {
		t.Fatalf("pipeline clocks differ: %v vs %v", ctx1.Clock.CPU, ctx2.Clock.CPU)
	}
}

// TestDriverColumnarDelivery runs the availability-ordered source driver
// three ways — tuple, row-batch, and columnar leaves — over sources with
// interleaved arrival schedules, and requires identical outputs,
// delivery counts, and final clocks.
func TestDriverColumnarDelivery(t *testing.T) {
	ls := randTuples(1500, 250, 5, rRow)
	rs := randTuples(1500, 250, 6, sRow)
	lRel := source.NewRelation("r", rSchema, ls)
	rRel := source.NewRelation("s", sSchema, rs)
	run := func(mode string) (*collectSink, *Driver, *Context) {
		ctx := NewContext()
		out := &collectSink{}
		j := NewHashJoin(ctx, Pipelined, rSchema, sSchema, []int{0}, []int{0}, out)
		ll := &Leaf{
			Provider: source.NewProvider(lRel, source.NewBursty(len(ls), 12000, 80, 0.01, 3)),
			Pred:     func(tp types.Tuple) bool { return tp[1].I%7 != 0 },
			Push:     j.PushLeft,
		}
		rl := &Leaf{
			Provider: source.NewProvider(rRel, source.NewBursty(len(rs), 9000, 120, 0.02, 4)),
			Push:     j.PushRight,
		}
		switch mode {
		case "rows":
			ll.PushBatch, rl.PushBatch = j.PushLeftBatch, j.PushRightBatch
		case "columnar":
			ll.PushColBatch, rl.PushColBatch = j.PushLeftColBatch, j.PushRightColBatch
		}
		d := NewDriver(ctx, ll, rl)
		d.Run(0, nil)
		j.FinishLeft()
		j.FinishRight()
		return out, d, ctx
	}
	outT, dT, ctxT := run("tuple")
	if len(outT.rows) == 0 {
		t.Fatal("no join output")
	}
	for _, mode := range []string{"rows", "columnar"} {
		out, d, ctx := run(mode)
		if d.Delivered != dT.Delivered {
			t.Fatalf("%s: delivered %d vs %d", mode, d.Delivered, dT.Delivered)
		}
		if len(out.rows) != len(outT.rows) {
			t.Fatalf("%s: %d vs %d outputs", mode, len(out.rows), len(outT.rows))
		}
		for i := range out.rows {
			if out.rows[i].String() != outT.rows[i].String() {
				t.Fatalf("%s: output %d differs", mode, i)
			}
		}
		if ctx.Clock.Now != ctxT.Clock.Now && math.Abs(ctx.Clock.Now-ctxT.Clock.Now) > 1e-9*ctxT.Clock.Now {
			t.Fatalf("%s: clock %v vs %v", mode, ctx.Clock.Now, ctxT.Clock.Now)
		}
	}
}

// TestAggTableColumnarGrouping pins the hashed group routing against the
// scalar path on adversarial keys: kinds that compare equal but must
// group apart (Int(1) vs Float(1) vs Str("1")), NaNs (one group), and
// ±0 (distinct groups) — the byte codec's grouping semantics.
func TestAggTableColumnarGrouping(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "g.k", Kind: types.KindFloat},
		types.Column{Name: "g.v", Kind: types.KindInt},
	)
	keys := []types.Value{
		types.Int(1), types.Float(1), types.Str("1"),
		types.Float(math.NaN()), types.Float(math.NaN()),
		types.Float(0), types.Float(math.Copysign(0, -1)),
		types.Null(), types.Str(""),
	}
	var rows []types.Tuple
	for rep := 0; rep < 3; rep++ {
		for i, k := range keys {
			rows = append(rows, types.Tuple{k, types.Int(int64(i))})
		}
	}
	aggs := []algebra.AggSpec{{Kind: algebra.AggCount, As: "n"}}
	mk := func(t *testing.T) *AggTable {
		t.Helper()
		a, err := NewAggTable(NewContext(), schema, []string{"g.k"}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := mk(t)
	for _, r := range rows {
		a1.AbsorbRaw(r)
	}
	a2 := mk(t)
	cb := types.FromRows(rows, 2)
	a2.PushColBatch(cb)
	// 8 groups: {Int 1, Float 1, Str "1", NaN, +0, -0, Null, ""}.
	if a1.Groups() != 8 || a2.Groups() != 8 {
		t.Fatalf("groups: scalar %d, columnar %d, want 8", a1.Groups(), a2.Groups())
	}
	r1, r2 := a1.EmitFinal(), a2.EmitFinal()
	counts := func(rs []types.Tuple) map[string]string {
		m := map[string]string{}
		for _, r := range rs {
			m[types.EncodeKey(r, []int{0})] = r[1].String()
		}
		return m
	}
	c1, c2 := counts(r1), counts(r2)
	if len(c1) != len(c2) {
		t.Fatalf("emitted group counts differ: %d vs %d", len(c1), len(c2))
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("group %q count differs: %s vs %s", k, v, c2[k])
		}
	}
}

// TestColumnarAllocsNotWorse enforces the allocation acceptance bound as
// a like-for-like regression test: the columnar join path must not
// allocate more per tuple than the row-batch path (the shared floor is
// bucket-chain storage), and both must stay far under tuple-at-a-time.
func TestColumnarAllocsNotWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const n = 4096
	ls := randTuples(n, n/4, 5, rRow)
	rs := randTuples(n, n/4, 6, sRow)
	lbs := toColBatches(ls, 64)
	rbs := toColBatches(rs, 64)
	perTuple := func(fn func()) float64 {
		return testing.AllocsPerRun(3, fn) / float64(2*n)
	}
	tuple := perTuple(func() {
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		feedJoin(j, ls, rs, 64, false)
	})
	rows := perTuple(func() {
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		feedJoin(j, ls, rs, 64, true)
	})
	columnar := perTuple(func() {
		j := NewHashJoin(NewContext(), Pipelined, rSchema, sSchema, []int{0}, []int{0}, Discard)
		for i := range lbs {
			j.PushLeftColBatch(lbs[i])
			j.PushRightColBatch(rbs[i])
		}
		j.FinishLeft()
		j.FinishRight()
	})
	t.Logf("allocs/tuple: tuple %.3f, rows %.3f, columnar %.3f", tuple, rows, columnar)
	// Small tolerance: the columnar path's extra slab arenas amortize to
	// well under 0.1 allocs/tuple.
	if columnar > rows+0.1 {
		t.Fatalf("columnar path allocates %.3f/tuple, row path %.3f/tuple", columnar, rows)
	}
	if columnar > tuple/2 {
		t.Fatalf("columnar path allocates %.3f/tuple, more than half of tuple-at-a-time %.3f", columnar, tuple)
	}
}

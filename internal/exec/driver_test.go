package exec

import (
	"testing"

	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
)

// TestDriverBestLeafTieBreak pins the tie rule: when several leaves'
// next tuples are available at the same instant, the lowest-index leaf is
// serviced — and keeps being serviced until a strictly earlier arrival
// appears elsewhere, so same-time sources drain in leaf order.
func TestDriverBestLeafTieBreak(t *testing.T) {
	a := source.NewRelation("a", rSchema, []types.Tuple{rRow(1, 0), rRow(2, 0)})
	b := source.NewRelation("b", sSchema, []types.Tuple{sRow(1, 0), sRow(2, 0)})
	var order []string
	d := NewDriver(NewContext(),
		&Leaf{Provider: source.NewProvider(a, nil), Push: func(types.Tuple) { order = append(order, "a") }},
		&Leaf{Provider: source.NewProvider(b, nil), Push: func(types.Tuple) { order = append(order, "b") }},
	)
	if best := d.bestLeaf(); best != 0 {
		t.Fatalf("tie must break to lowest index, got %d", best)
	}
	d.Run(0, nil)
	want := []string{"a", "a", "b", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", order, want)
		}
	}
}

// TestDriverFutureArrivalsDoNotBlock pins the difference between "next
// tuple is in the future" and "exhausted": a pending-future leaf is still
// the best leaf (the clock jumps forward to it); bestLeaf reports -1 only
// when every source is exhausted, and Step mirrors that.
func TestDriverFutureArrivalsDoNotBlock(t *testing.T) {
	late := source.NewRelation("late", rSchema, []types.Tuple{rRow(1, 0)})
	later := source.NewRelation("later", sSchema, []types.Tuple{sRow(1, 0)})
	ctx := NewContext()
	d := NewDriver(ctx,
		&Leaf{Provider: source.NewProvider(late, source.Bandwidth{Latency: 5, TuplesPerSec: 1}), Push: func(types.Tuple) {}},
		&Leaf{Provider: source.NewProvider(later, source.Bandwidth{Latency: 50, TuplesPerSec: 1}), Push: func(types.Tuple) {}},
	)
	if best := d.bestLeaf(); best != 0 {
		t.Fatalf("earliest future arrival must win, got leaf %d", best)
	}
	if !d.Step() {
		t.Fatal("Step must service a future arrival, not report exhaustion")
	}
	if ctx.Clock.Now < 5 {
		t.Errorf("clock should jump to the arrival, now=%g", ctx.Clock.Now)
	}
	if best := d.bestLeaf(); best != 1 {
		t.Fatalf("remaining leaf must be chosen, got %d", best)
	}
	if !d.Step() {
		t.Fatal("second Step must deliver")
	}
	if best := d.bestLeaf(); best != -1 {
		t.Fatalf("all exhausted must yield -1, got %d", best)
	}
	if d.Step() {
		t.Fatal("Step after exhaustion must report false")
	}
	if !d.Run(0, nil) {
		t.Fatal("Run over exhausted sources must report exhaustion")
	}
}

// TestDriverPollCadenceExact pins Run's poll arithmetic: poll fires after
// exactly pollEvery delivered tuples even when the interval is smaller
// than, and not a divisor of, the internal batch cap — batches are
// clamped so the monitor never observes a late poll.
func TestDriverPollCadenceExact(t *testing.T) {
	const n = 100
	rows := make([]types.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, rRow(int64(i), 0))
	}
	rel := source.NewRelation("r", rSchema, rows)
	for _, every := range []int{1, 7, 64, 100, 1000} {
		d := NewDriver(NewContext(), &Leaf{Provider: source.NewProvider(rel, nil), Push: func(types.Tuple) {}})
		var at []int64
		exhausted := d.Run(every, func() bool {
			at = append(at, d.Delivered)
			return false
		})
		rel0 := source.NewProvider(rel, nil)
		rel0.Reset()
		if !exhausted {
			t.Fatalf("every=%d: run must exhaust", every)
		}
		want := n / every
		if len(at) != want {
			t.Fatalf("every=%d: %d polls (%v), want %d", every, len(at), at, want)
		}
		for i, got := range at {
			if got != int64((i+1)*every) {
				t.Fatalf("every=%d: poll %d at %d delivered, want %d", every, i, got, (i+1)*every)
			}
		}
		// Fresh provider per interval.
		rel = source.NewRelation("r", rSchema, rows)
	}
}

// TestDriverPollNotCalledWhenNil covers the poll==nil fast path together
// with a tiny batch budget (pollEvery ignored entirely).
func TestDriverPollNotCalledWhenNil(t *testing.T) {
	rel := source.NewRelation("r", rSchema, []types.Tuple{rRow(1, 0), rRow(2, 0)})
	d := NewDriver(NewContext(), &Leaf{Provider: source.NewProvider(rel, nil), Push: func(types.Tuple) {}})
	if !d.Run(1, nil) || d.Delivered != 2 {
		t.Fatalf("nil-poll run broken: delivered=%d", d.Delivered)
	}
}

package datagen

import (
	"bytes"
	"testing"

	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
)

// fingerprintRelation encodes every row through the collision-free key
// codec, yielding a byte string that is equal iff the relations hold the
// same rows in the same order.
func fingerprintRelation(rel *source.Relation) []byte {
	var buf []byte
	for _, t := range rel.Rows {
		buf = types.AppendKeyAll(buf, t)
		buf = append(buf, 0xFF) // row separator (never produced by the codec's tags)
	}
	return buf
}

func fingerprintDataset(d *Dataset) []byte {
	var buf []byte
	for _, name := range []string{"region", "nation", "supplier", "customer", "orders", "lineitem"} {
		buf = append(buf, name...)
		buf = append(buf, fingerprintRelation(d.Relations()[name])...)
	}
	return buf
}

// TestGenerateSeedDeterminism pins the repo-wide seeding contract: every
// math/rand consumer is constructed from an explicit seed, so identical
// configs produce byte-identical datasets — across runs, GOMAXPROCS
// settings, and Go releases of the same rand algorithm. The vclock
// analyzer (internal/analysis) enforces the "no unseeded rand" half of
// this mechanically; this test pins the observable output half.
func TestGenerateSeedDeterminism(t *testing.T) {
	cfg := Config{ScaleFactor: 0.002, Skewed: true, Z: DefaultZ, Seed: 42}
	a := fingerprintDataset(Generate(cfg))
	b := fingerprintDataset(Generate(cfg))
	if !bytes.Equal(a, b) {
		t.Fatal("Generate with identical Config produced different datasets")
	}

	cfg.Seed = 43
	c := fingerprintDataset(Generate(cfg))
	if bytes.Equal(a, c) {
		t.Fatal("Generate with a different Seed produced an identical dataset")
	}
}

func TestZipfTableSeedDeterminism(t *testing.T) {
	a := fingerprintRelation(ZipfTable("zt", 500, 50, 0.5, 7))
	b := fingerprintRelation(ZipfTable("zt", 500, 50, 0.5, 7))
	if !bytes.Equal(a, b) {
		t.Fatal("ZipfTable with identical args produced different relations")
	}
	c := fingerprintRelation(ZipfTable("zt", 500, 50, 0.5, 8))
	if bytes.Equal(a, c) {
		t.Fatal("ZipfTable with a different seed produced an identical relation")
	}
}

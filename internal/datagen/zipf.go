// Package datagen generates the evaluation datasets of the paper (§3.5):
// a TPC-H-style database at a configurable scale factor, in a uniform
// variant and in a skewed variant that applies a Zipf distribution with
// z = 0.5 to the major (join and measure) attributes — our stand-in for
// the Microsoft Research skewed TPC-D generator the authors used. All
// generation is deterministic given a seed.
package datagen

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^z. The
// standard library's rand.Zipf requires z > 1; the paper uses z = 0.5, so
// we precompute the CDF and sample by binary search. Deterministic given
// its *rand.Rand.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a sampler over ranks [0, n) with exponent z >= 0.
func NewZipf(rng *rand.Rand, z float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), z)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns a rank in [0, n), rank 0 being the most frequent.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

package datagen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
)

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1.0, 100)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be roughly 2x rank 1 at z=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("rank0/rank1 = %g, want ~2", ratio)
	}
	// Monotone-ish decay: first decile outweighs last decile.
	first, last := 0, 0
	for i := 0; i < 10; i++ {
		first += counts[i]
		last += counts[90+i]
	}
	if first <= last {
		t.Error("Zipf head should outweigh tail")
	}
}

func TestZipfHalfExponent(t *testing.T) {
	// z=0.5 (paper's skew) is shallower than z=1 but still skewed.
	zHalf := NewZipf(rand.New(rand.NewSource(2)), 0.5, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[zHalf.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Error("z=0.5 should still favour low ranks")
	}
}

func TestZipfDegenerateDomain(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(3)), 0.5, 0)
	if z.N() != 1 || z.Next() != 0 {
		t.Error("degenerate domain should clamp to 1")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.01, Seed: 1})
	nCust, nOrd, nSupp := Cardinalities(0.01)
	if d.Customer.Len() != nCust || d.Orders.Len() != nOrd || d.Supplier.Len() != nSupp {
		t.Errorf("cardinalities: cust=%d ord=%d supp=%d", d.Customer.Len(), d.Orders.Len(), d.Supplier.Len())
	}
	if d.Region.Len() != 5 || d.Nation.Len() != 25 {
		t.Error("region/nation sizes wrong")
	}
	// LINEITEM ~4 lines/order.
	avg := float64(d.Lineitem.Len()) / float64(d.Orders.Len())
	if avg < 3 || avg > 5 {
		t.Errorf("lineitem avg lines/order = %g", avg)
	}
	if len(d.Relations()) != 6 {
		t.Error("Relations() incomplete")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.002, Seed: 9})
	b := Generate(Config{ScaleFactor: 0.002, Seed: 9})
	for i := range a.Orders.Rows {
		for j := range a.Orders.Rows[i] {
			if types.Compare(a.Orders.Rows[i][j], b.Orders.Rows[i][j]) != 0 {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.002, Seed: 5})
	nCust := int64(d.Customer.Len())
	nSupp := int64(d.Supplier.Len())
	nOrd := int64(d.Orders.Len())
	for _, r := range d.Orders.Rows {
		if ck := r[1].I; ck < 0 || ck >= nCust {
			t.Fatalf("o_custkey %d out of range", ck)
		}
		if dt := r[4].I; dt < dateLo || dt > dateHi {
			t.Fatalf("o_orderdate %d out of range", dt)
		}
	}
	for _, r := range d.Lineitem.Rows {
		if ok := r[0].I; ok < 0 || ok >= nOrd {
			t.Fatalf("l_orderkey %d out of range", ok)
		}
		if sk := r[2].I; sk < 0 || sk >= nSupp {
			t.Fatalf("l_suppkey %d out of range", sk)
		}
		if disc := r[5].F; disc < 0 || disc > 0.10001 {
			t.Fatalf("l_discount %g out of range", disc)
		}
	}
	for _, r := range d.Nation.Rows {
		if rk := r[2].I; rk < 0 || rk >= 5 {
			t.Fatalf("n_regionkey %d out of range", rk)
		}
	}
}

func TestBaseTablesSortedByKey(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.002, Seed: 5})
	if source.SortednessAsc(d.Orders, "o_orderkey") != 1 {
		t.Error("orders should be key-sorted")
	}
	if source.SortednessAsc(d.Lineitem, "l_orderkey") != 1 {
		t.Error("lineitem should be orderkey-sorted")
	}
}

func TestSkewedDatasetIsSkewed(t *testing.T) {
	uni := Generate(Config{ScaleFactor: 0.01, Seed: 7})
	skw := Generate(Config{ScaleFactor: 0.01, Seed: 7, Skewed: true, Z: DefaultZ})

	fanout := func(d *Dataset) (maxN int, variance float64) {
		counts := map[int64]int{}
		for _, r := range d.Orders.Rows {
			counts[r[1].I]++
		}
		var sum, sumsq float64
		for _, c := range counts {
			if c > maxN {
				maxN = c
			}
			sum += float64(c)
			sumsq += float64(c) * float64(c)
		}
		n := float64(len(counts))
		mean := sum / n
		return maxN, sumsq/n - mean*mean
	}
	uMax, uVar := fanout(uni)
	sMax, sVar := fanout(skw)
	if sMax <= uMax || sVar <= uVar {
		t.Errorf("skewed dataset not skewed: uniform max=%d var=%.1f, skewed max=%d var=%.1f",
			uMax, uVar, sMax, sVar)
	}
}

func TestOrdersTotalPriceConsistent(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.001, Seed: 11})
	sums := map[int64]float64{}
	for _, r := range d.Lineitem.Rows {
		sums[r[0].I] += r[4].F
	}
	for _, r := range d.Orders.Rows {
		if math.Abs(r[3].F-sums[r[0].I]) > 1e-6 {
			t.Fatalf("o_totalprice mismatch for order %d", r[0].I)
		}
	}
}

func TestZipfTable(t *testing.T) {
	rel := ZipfTable("z", 10000, 500, 0.5, 3)
	if rel.Len() != 10000 {
		t.Fatal("wrong size")
	}
	counts := map[int64]int{}
	for _, r := range rel.Rows {
		counts[r[1].I]++
	}
	if counts[0] <= 10000/500 {
		t.Error("zipf attribute head not heavy")
	}
	if rel.Schema.IndexOf("z.zattr") != 1 {
		t.Error("schema wrong")
	}
}

func TestGenerateDefaultsClamped(t *testing.T) {
	d := Generate(Config{})
	if d.Customer.Len() < 25 || d.Orders.Len() < 100 {
		t.Error("minimum cardinalities not enforced")
	}
	if d.Config.Z != DefaultZ {
		t.Error("default Z not applied")
	}
}

package datagen

import (
	"fmt"
	"math/rand"

	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
)

// Config controls dataset generation.
type Config struct {
	// ScaleFactor scales cardinalities relative to TPC-H SF 1
	// (CUSTOMER 150k, ORDERS 1.5M, LINEITEM ~6M). The paper runs SF 0.1;
	// tests default to much smaller.
	ScaleFactor float64
	// Skewed applies Zipf(Z) to the major attributes, reproducing the
	// skewed TPC-D dataset of §3.5.
	Skewed bool
	// Z is the Zipf exponent (paper: 0.5).
	Z float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultZ matches the paper's skew factor.
const DefaultZ = 0.5

// Dataset is the generated database.
type Dataset struct {
	Region   *source.Relation
	Nation   *source.Relation
	Supplier *source.Relation
	Customer *source.Relation
	Orders   *source.Relation
	Lineitem *source.Relation
	Config   Config
}

// Relations returns all tables keyed by name.
func (d *Dataset) Relations() map[string]*source.Relation {
	return map[string]*source.Relation{
		"region":   d.Region,
		"nation":   d.Nation,
		"supplier": d.Supplier,
		"customer": d.Customer,
		"orders":   d.Orders,
		"lineitem": d.Lineitem,
	}
}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	returnFlags = []string{"N", "R", "A"}
	statuses    = []string{"O", "F", "P"}
)

// Date range: days since 1992-01-01 through ~1998-12-31, as in TPC-H.
const (
	dateLo = 0
	dateHi = 2556
)

// col is shorthand for a column definition.
func col(name string, k types.Kind) types.Column { return types.Column{Name: name, Kind: k} }

// Schemas for the six generated tables. Dates are KindInt (days since
// 1992-01-01).
var (
	RegionSchema = types.NewSchema(
		col("region.r_regionkey", types.KindInt),
		col("region.r_name", types.KindString),
	)
	NationSchema = types.NewSchema(
		col("nation.n_nationkey", types.KindInt),
		col("nation.n_name", types.KindString),
		col("nation.n_regionkey", types.KindInt),
	)
	SupplierSchema = types.NewSchema(
		col("supplier.s_suppkey", types.KindInt),
		col("supplier.s_name", types.KindString),
		col("supplier.s_nationkey", types.KindInt),
		col("supplier.s_acctbal", types.KindFloat),
	)
	CustomerSchema = types.NewSchema(
		col("customer.c_custkey", types.KindInt),
		col("customer.c_name", types.KindString),
		col("customer.c_nationkey", types.KindInt),
		col("customer.c_mktsegment", types.KindString),
		col("customer.c_acctbal", types.KindFloat),
	)
	OrdersSchema = types.NewSchema(
		col("orders.o_orderkey", types.KindInt),
		col("orders.o_custkey", types.KindInt),
		col("orders.o_orderstatus", types.KindString),
		col("orders.o_totalprice", types.KindFloat),
		col("orders.o_orderdate", types.KindInt),
		col("orders.o_shippriority", types.KindInt),
	)
	LineitemSchema = types.NewSchema(
		col("lineitem.l_orderkey", types.KindInt),
		col("lineitem.l_linenumber", types.KindInt),
		col("lineitem.l_suppkey", types.KindInt),
		col("lineitem.l_quantity", types.KindFloat),
		col("lineitem.l_extendedprice", types.KindFloat),
		col("lineitem.l_discount", types.KindFloat),
		col("lineitem.l_returnflag", types.KindString),
		col("lineitem.l_shipdate", types.KindInt),
	)
)

// Cardinalities returns the table sizes for a scale factor.
func Cardinalities(sf float64) (customers, orders, suppliers int) {
	customers = max(25, int(150000*sf))
	orders = max(100, int(1500000*sf))
	suppliers = max(10, int(10000*sf))
	return
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds a dataset. Base tables come out sorted by primary key
// (the "bulk loaded" ordering §5 exploits); callers shuffle or reorder as
// experiments require.
func Generate(cfg Config) *Dataset {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 0.001
	}
	if cfg.Z == 0 {
		cfg.Z = DefaultZ
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nCust, nOrd, nSupp := Cardinalities(cfg.ScaleFactor)

	d := &Dataset{Config: cfg}

	// REGION.
	regRows := make([]types.Tuple, len(regionNames))
	for i, n := range regionNames {
		regRows[i] = types.Tuple{types.Int(int64(i)), types.Str(n)}
	}
	d.Region = source.NewRelation("region", RegionSchema, regRows)

	// NATION: 25 nations, 5 per region.
	natRows := make([]types.Tuple, 25)
	for i := 0; i < 25; i++ {
		natRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("NATION_%02d", i)),
			types.Int(int64(i % 5)),
		}
	}
	d.Nation = source.NewRelation("nation", NationSchema, natRows)

	// Skew samplers (fresh per attribute family for independence).
	var custPick, suppPick, natPick func() int64
	if cfg.Skewed {
		zc := NewZipf(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Z, nCust)
		zs := NewZipf(rand.New(rand.NewSource(cfg.Seed+2)), cfg.Z, nSupp)
		zn := NewZipf(rand.New(rand.NewSource(cfg.Seed+3)), cfg.Z, 25)
		custPick = func() int64 { return int64(zc.Next()) }
		suppPick = func() int64 { return int64(zs.Next()) }
		natPick = func() int64 { return int64(zn.Next()) }
	} else {
		custPick = func() int64 { return rng.Int63n(int64(nCust)) }
		suppPick = func() int64 { return rng.Int63n(int64(nSupp)) }
		natPick = func() int64 { return rng.Int63n(25) }
	}

	// SUPPLIER.
	suppRows := make([]types.Tuple, nSupp)
	for i := 0; i < nSupp; i++ {
		suppRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("Supplier#%06d", i)),
			types.Int(natPick()),
			types.Float(float64(rng.Intn(1000000)) / 100),
		}
	}
	d.Supplier = source.NewRelation("supplier", SupplierSchema, suppRows)

	// CUSTOMER.
	custRows := make([]types.Tuple, nCust)
	for i := 0; i < nCust; i++ {
		custRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("Customer#%06d", i)),
			types.Int(natPick()),
			types.Str(segments[rng.Intn(len(segments))]),
			types.Float(float64(rng.Intn(1000000)) / 100),
		}
	}
	d.Customer = source.NewRelation("customer", CustomerSchema, custRows)

	// ORDERS, sorted by o_orderkey (dense keys).
	ordRows := make([]types.Tuple, nOrd)
	ordDate := make([]int64, nOrd)
	for i := 0; i < nOrd; i++ {
		date := int64(dateLo + rng.Intn(dateHi-dateLo))
		ordDate[i] = date
		ordRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Int(custPick()),
			types.Str(statuses[rng.Intn(len(statuses))]),
			types.Float(0), // filled after lineitems
			types.Int(date),
			types.Int(int64(rng.Intn(2))),
		}
	}

	// LINEITEM: 1..7 lines per order (mean 4, TPC-H-like), sorted by
	// l_orderkey. Under skew, line counts and measures are zipfy too.
	var liRows []types.Tuple
	var quantPick func() float64
	if cfg.Skewed {
		zq := NewZipf(rand.New(rand.NewSource(cfg.Seed+4)), cfg.Z, 50)
		quantPick = func() float64 { return float64(zq.Next() + 1) }
	} else {
		quantPick = func() float64 { return float64(rng.Intn(50) + 1) }
	}
	for o := 0; o < nOrd; o++ {
		lines := 1 + rng.Intn(7)
		total := 0.0
		for ln := 0; ln < lines; ln++ {
			qty := quantPick()
			price := qty * (900 + float64(rng.Intn(100000))/100)
			disc := float64(rng.Intn(11)) / 100
			ship := ordDate[o] + int64(1+rng.Intn(120))
			liRows = append(liRows, types.Tuple{
				types.Int(int64(o)),
				types.Int(int64(ln + 1)),
				types.Int(suppPick()),
				types.Float(qty),
				types.Float(price),
				types.Float(disc),
				types.Str(returnFlags[rng.Intn(len(returnFlags))]),
				types.Int(ship),
			})
			total += price
		}
		ordRows[o][3] = types.Float(total)
	}
	d.Orders = source.NewRelation("orders", OrdersSchema, ordRows)
	d.Lineitem = source.NewRelation("lineitem", LineitemSchema, liRows)
	return d
}

// ZipfTable generates the standalone n-row table used in the §4.5
// predictability study: a key column plus a Zipf-distributed join
// attribute over domain [0, domain).
func ZipfTable(name string, n, domain int, z float64, seed int64) *source.Relation {
	schema := types.NewSchema(
		col(name+".k", types.KindInt),
		col(name+".zattr", types.KindInt),
	)
	zs := NewZipf(rand.New(rand.NewSource(seed)), z, domain)
	rows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(zs.Next()))}
	}
	return source.NewRelation(name, schema, rows)
}

// Command adpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	adpbench -experiment all -sf 0.01
//	adpbench -experiment figure2
//	adpbench -experiment figure5 -sf 0.02
//
// Experiments: figure2, table1, figure3, table2, section45, figure5,
// table3, figure6, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tukwila/adp/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (figure2|table1|figure3|table2|section45|figure5|table3|figure6|ablations|all)")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor (paper: 0.1)")
		seed       = flag.Int64("seed", 42, "generator seed")
		poll       = flag.Int("poll", 2048, "corrective polling interval (tuples)")
		partitions = flag.Int("partitions", 1, "partition-parallel width for phase execution (<=1 = serial)")
	)
	flag.Parse()
	cfg := bench.Config{SF: *sf, Seed: *seed, PollEvery: *poll, Partitions: *partitions}
	if err := run(*experiment, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "adpbench:", err)
		os.Exit(1)
	}
}

func run(experiment string, cfg bench.Config) error {
	want := func(names ...string) bool {
		if experiment == "all" {
			return true
		}
		for _, n := range names {
			if experiment == n {
				return true
			}
		}
		return false
	}
	matched := false
	if want("figure2", "table1") {
		matched = true
		cells, err := bench.Comparison(cfg, false)
		if err != nil {
			return err
		}
		if want("figure2") {
			fmt.Println(bench.FormatComparison("Figure 2: static vs corrective vs plan partitioning (local data, virtual seconds)", cells))
		}
		if want("table1") {
			fmt.Println(bench.FormatPhaseTable("Table 1: corrective breakdown (local data)", cells))
		}
	}
	if want("figure3", "table2") {
		matched = true
		cells, err := bench.Comparison(cfg, true)
		if err != nil {
			return err
		}
		if want("figure3") {
			fmt.Println(bench.FormatComparison("Figure 3: the same comparison over a bursty wireless link", cells))
		}
		if want("table2") {
			fmt.Println(bench.FormatPhaseTable("Table 2: corrective breakdown (wireless)", cells))
		}
	}
	if want("section45") {
		matched = true
		res, err := bench.Section45(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	}
	if want("figure5", "table3") {
		matched = true
		cells, err := bench.Figure5(cfg)
		if err != nil {
			return err
		}
		if want("figure5") {
			fmt.Println(bench.FormatFigure5(cells))
		}
		if want("table3") {
			fmt.Println(bench.FormatTable3(cells))
		}
	}
	if want("figure6") {
		matched = true
		cells, err := bench.Figure6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigure6(cells))
	}
	if want("ablations") {
		matched = true
		rows, err := bench.Ablations(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblations(rows))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

// adplint runs the adp analyzer suite (internal/analysis): mechanical
// enforcement of the engine's determinism, hot-path, and wire-protocol
// contracts. See docs/static-analysis.md for the analyzer catalog and
// the //adp: directive reference.
//
// It speaks two protocols:
//
//   - As a vet tool:   go vet -vettool=$(pwd)/bin/adplint ./...
//     The go command hands it one vet.cfg per package (file lists,
//     import maps, export-data paths); `make lint` uses this mode so
//     package enumeration, caching, and test-file handling match vet.
//
//   - Standalone:      adplint [-only vclock,maporder] ./...
//     Loads packages itself via `go list -export` (build-cache export
//     data; no network, no extra deps) — handy for one-off runs and
//     editor integration.
//
// Exit status: 0 clean, 1 driver error, 2 diagnostics reported (the
// vet-tool convention).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/tukwila/adp/internal/analysis"
)

func main() {
	// The go command probes its -vettool with -V=full (tool identity for
	// action caching) and -flags (supported flags, JSON) before any real
	// work; both must answer on stdout and exit 0.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	only := flag.String("only", "", "comma-separated analyzer subset (default: whole suite)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adplint [-only a,b] packages...  |  go vet -vettool=adplint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite {
			scope := "all packages (self-triggering)"
			if a.Packages != nil {
				scope = strings.Join(a.Packages, ", ")
			}
			fmt.Printf("%-14s %s\n%14s   scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	var found bool
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		found, err = runVetTool(args[0], analyzers)
	} else {
		found, err = runStandalone(args, analyzers)
	}
	if err != nil {
		fatal(err)
	}
	if found {
		os.Exit(2)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.Suite, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := analysis.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (run adplint -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// printVersion emits the tool-identity line the go command hashes into
// its vet action cache: content-addressed on our own binary so editing
// an analyzer invalidates cached vet results.
func printVersion() {
	var id string
	if data, err := os.ReadFile(os.Args[0]); err == nil {
		sum := sha256.Sum256(data)
		id = fmt.Sprintf("%x", sum[:8])
	} else {
		id = "unknown"
	}
	fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), id)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adplint: %v\n", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"github.com/tukwila/adp/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the standalone
// loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// runStandalone loads the packages matching patterns with
// `go list -export` (which compiles them and yields build-cache export
// data for every dependency), type-checks each in-module package, and
// runs the analyzers over it. No network, no deps beyond the toolchain.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) (found bool, err error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,Export,Module,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return false, fmt.Errorf("go list -export: %v", err)
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return false, err
		}
		if p.Error != nil {
			return false, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkg := p
		if !p.DepOnly && !p.Standard {
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{fset: fset, files: exports}
	for _, p := range targets {
		diags, err := analyzePackage(fset, p, imp, analyzers)
		if err != nil {
			return found, err
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
		found = found || len(diags) > 0
	}
	return found, nil
}

func analyzePackage(fset *token.FileSet, p *listedPackage, imp *exportImporter, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg, info, err := analysis.Check(fset, p.ImportPath, files, imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return analysis.RunAnalyzers(fset, files, pkg, info, analyzers, true), nil
}

package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"github.com/tukwila/adp/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes for its -vettool
// (cmd/go/internal/work.vetConfig). Fields we do not consume are listed
// anyway so the schema is documented in one place.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by a vet.cfg and
// prints diagnostics to stderr. It reports whether any were found.
func runVetTool(cfgPath string, analyzers []*analysis.Analyzer) (found bool, err error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return false, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command caches vet results keyed on the facts file, so it
	// must exist even though the suite computes no facts. Dependency
	// passes (VetxOnly) stop here: diagnostics for them are not wanted.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("adplint: no facts\n"), 0o666); err != nil {
			return false, err
		}
	}
	if cfg.VetxOnly {
		return false, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return false, nil
			}
			return false, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return false, nil
	}
	pkg, info, err := analysis.Check(fset, cfg.ImportPath, files, &exportImporter{
		fset:      fset,
		importMap: cfg.ImportMap,
		files:     cfg.PackageFile,
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, nil
		}
		return false, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	diags := analysis.RunAnalyzers(fset, files, pkg, info, analyzers, true)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return len(diags) > 0, nil
}

// exportImporter resolves imports from the compiler export data the go
// command lists in the vet config (or `go list -export` provides in
// standalone mode): source import path -> canonical package path via
// importMap, canonical path -> export/archive file via files, decoded
// by the standard gc importer.
type exportImporter struct {
	fset      *token.FileSet
	importMap map[string]string // may be nil (identity)
	files     map[string]string
	gc        types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	if e.gc == nil {
		e.gc = importer.ForCompiler(e.fset, "gc", func(p string) (io.ReadCloser, error) {
			file, ok := e.files[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		})
	}
	return e.gc.Import(path)
}

// Command adpquery runs one workload query over a generated TPC-H-style
// dataset under a chosen execution strategy and prints the results plus
// the adaptive-execution report. With -stream it consumes the streaming
// cursor instead: rows print as they arrive and the event subscription
// narrates phase starts, plan switches, and stitch-up live.
//
// Usage:
//
//	adpquery -query Q10A -strategy corrective -sf 0.01
//	adpquery -query Q5 -strategy static -cards -skewed
//	adpquery -query Q3A -strategy corrective -wireless -stream
//	adpquery -query Q10 -strategy corrective -partitions 4
//	adpquery -query Q3A -fault random -fault-seed 7 -stream
//	adpquery -query Q3A -fault dead -partial
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/core"
	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/engine"
	"github.com/tukwila/adp/internal/opt"
	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
	"github.com/tukwila/adp/internal/workload"
)

func main() {
	var (
		query      = flag.String("query", "Q3A", "workload query (Q3|Q3A|Q10|Q10A|Q5)")
		strategy   = flag.String("strategy", "corrective", "execution strategy (static|corrective|planpart)")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed       = flag.Int64("seed", 42, "generator seed")
		skewed     = flag.Bool("skewed", false, "use the Zipf-skewed dataset")
		cards      = flag.Bool("cards", false, "give the optimizer exact cardinalities")
		wireless   = flag.Bool("wireless", false, "deliver sources over a simulated bursty link")
		preagg     = flag.String("preagg", "none", "pre-aggregation (none|windowed|traditional)")
		limit      = flag.Int("limit", 10, "result rows to print")
		poll       = flag.Int("poll", 2048, "corrective polling interval (tuples)")
		partitions = flag.Int("partitions", 1, "partition-parallel width for phase execution (<=1 = serial)")
		stream     = flag.Bool("stream", false, "consume the streaming cursor: live rows + adaptive-event progress")
		fault      = flag.String("fault", "", "inject faults into the largest source (transient|stall|dead|failover|random)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for -fault random schedules")
		partial    = flag.Bool("partial", false, "degrade to partial results when a source dies instead of failing")
		standing   = flag.Bool("standing", false, "register a standing query: feed a seeded delta script and narrate signed updates + watermarks")
		deltaN     = flag.Int("deltas", 200, "delta script length for -standing (half inserts, half deletes)")
	)
	flag.Parse()
	if err := run(*query, *strategy, *sf, *seed, *skewed, *cards, *wireless, *preagg, *limit, *poll, *partitions, *stream, *fault, *faultSeed, *partial, *standing, *deltaN); err != nil {
		fmt.Fprintln(os.Stderr, "adpquery:", err)
		os.Exit(1)
	}
}

func run(query, strategy string, sf float64, seed int64, skewed, cards, wireless bool, preagg string, limit, poll, partitions int, stream bool, fault string, faultSeed int64, partial bool, standing bool, deltaN int) error {
	q, err := workload.ByName(query)
	if err != nil {
		return err
	}
	var strat core.Strategy
	switch strategy {
	case "static":
		strat = core.Static
	case "corrective":
		strat = core.Corrective
	case "planpart":
		strat = core.PlanPartition
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	var pa opt.PreAggMode
	switch preagg {
	case "none":
		pa = opt.PreAggNone
	case "windowed":
		pa = opt.PreAggWindowed
	case "traditional":
		pa = opt.PreAggTraditional
	default:
		return fmt.Errorf("unknown preagg mode %q", preagg)
	}

	fmt.Printf("generating TPC-H sf=%g (skewed=%v) ...\n", sf, skewed)
	d := datagen.Generate(datagen.Config{ScaleFactor: sf, Seed: seed, Skewed: skewed, Z: datagen.DefaultZ})
	eng := engine.New()
	for _, rel := range d.Relations() {
		if wireless {
			eng.RegisterRemote(rel, source.NewBursty(rel.Len(), 1_000_000, 8000, 0.01, seed+int64(rel.Len())))
		} else {
			eng.Register(rel)
		}
	}
	o := core.Options{Strategy: strat, PollEvery: poll, PreAgg: pa, Partitions: partitions, PartialResults: partial}
	if cards {
		o.Known = workload.KnownCards(d)
	}
	if fault != "" {
		if err := injectFaults(eng, q, fault, faultSeed, &o); err != nil {
			return err
		}
	}

	if standing {
		return runStanding(eng, q, o, limit, seed, deltaN)
	}

	var rep *core.Report
	if stream {
		rep, err = runStreaming(eng, q, o, limit)
	} else {
		rep, err = eng.Execute(q, o)
	}
	if err != nil {
		return err
	}

	fmt.Printf("\n%s (%s) — %d result rows\n", q.Name, strat, len(rep.Rows))
	fmt.Print(engine.FormatRows(rep.Schema, rep.Rows, limit))
	fmt.Printf("\nexecution report:\n")
	fmt.Printf("  virtual time   %.3fs (cpu %.3fs, wall %.3fs)\n",
		rep.VirtualSeconds, rep.CPUSeconds, rep.RealSeconds)
	fmt.Printf("  phases         %d (switches %d)\n", len(rep.Phases), rep.Switches)
	for i, p := range rep.Phases {
		fmt.Printf("    phase %d: %d tuples, %.3fs\n      %s\n", i, p.Delivered, p.Seconds, p.Plan)
	}
	if rep.StitchCombos > 0 {
		fmt.Printf("  stitch-up      %.3fs, %d combinations, %d tuples reused, %d discarded\n",
			rep.StitchTime, rep.StitchCombos, rep.Reused, rep.Discarded)
	}
	if rep.Partial {
		fmt.Printf("  PARTIAL RESULTS: a source died and the run degraded to its delivered prefix\n")
	}
	for name, st := range rep.SourceFaults {
		fmt.Printf("  faults[%s]  transients %d, stalls %d (%.3fs), retries %d (%.3fs backoff)",
			name, st.Transients, st.Stalls, st.StallSeconds, st.Retries, st.BackoffSeconds)
		if st.FailedOver {
			fmt.Print(", failed over to mirror")
		}
		if st.Abandoned {
			fmt.Print(", ABANDONED")
		}
		fmt.Println()
	}
	return nil
}

// injectFaults arms a canned fault scenario on the query's largest source
// relation: the schedule goes through Engine.InjectFaults and the
// matching retry policy through Options.SourcePolicies, exactly the path
// library users take.
func injectFaults(eng *engine.Engine, q *algebra.Query, mode string, seed int64, o *core.Options) error {
	target, n := "", 0
	for _, name := range q.RelationNames() {
		if rel, ok := eng.Relation(name); ok && rel.Len() > n {
			target, n = name, rel.Len()
		}
	}
	if target == "" {
		return fmt.Errorf("-fault: no registered relation in query")
	}
	policy := source.RetryPolicy{MaxAttempts: 4, Backoff: 0.5}
	switch mode {
	case "transient":
		eng.InjectFaults(target, source.NewFaultSchedule(
			source.Fault{At: n / 3, Kind: source.FaultTransient, Times: 2}))
	case "stall":
		eng.InjectFaults(target, source.NewFaultSchedule(
			source.Fault{At: n / 4, Kind: source.FaultStall, Stall: 5}))
	case "dead":
		eng.InjectFaults(target, source.NewFaultSchedule(
			source.Fault{At: n / 2, Kind: source.FaultPermanent}))
	case "failover":
		mirror, _ := eng.Relation(target)
		policy.Mirror = mirror
		policy.FailoverDelay = 2
		eng.InjectFaults(target, source.NewFaultSchedule(
			source.Fault{At: n / 2, Kind: source.FaultPermanent}))
	case "random":
		eng.InjectFaults(target, source.RandomFaults(n, 6, 3.0, seed))
	default:
		return fmt.Errorf("unknown -fault mode %q (transient|stall|dead|failover|random)", mode)
	}
	o.SourcePolicies = map[string]source.RetryPolicy{target: policy}
	fmt.Printf("injecting %s fault(s) into %s (%d tuples)\n", mode, target, n)
	return nil
}

// printEvent renders one adaptive-execution event for the live
// narrative shared by -stream and -standing runs.
func printEvent(ev core.Event) {
	switch e := ev.(type) {
	case core.PhaseStarted:
		fmt.Printf("[%8.3fs] phase %d started (P=%d): %s\n", e.VirtualSeconds, e.Phase, e.Partitions, e.Plan)
	case core.PlanSwitched:
		fmt.Printf("[%8.3fs] plan switch: cand %.3g + stitch %.3g < %.3g remaining\n             %s\n          -> %s\n",
			e.VirtualSeconds, e.CandidateCost, e.StitchPenalty, e.CurrentRemaining, e.From, e.To)
	case core.StitchUpStarted:
		fmt.Printf("[%8.3fs] stitch-up over %d phases\n", e.VirtualSeconds, e.Phases)
	case core.PartitionStats:
		fmt.Printf("[%8.3fs] phase %d partition seconds: %v\n", e.VirtualSeconds, e.Phase, e.Seconds)
	case core.RowsDelivered:
		fmt.Printf("[%8.3fs] %d rows delivered\n", e.VirtualSeconds, e.Rows)
	case core.SourceStalled:
		fmt.Printf("[%8.3fs] source %s stalled %.3fs at tuple %d\n", e.VirtualSeconds, e.Source, e.Seconds, e.Tuple)
	case core.SourceRetried:
		fmt.Printf("[%8.3fs] source %s retry %d at tuple %d (backoff %.3fs)\n", e.VirtualSeconds, e.Source, e.Attempt, e.Tuple, e.Backoff)
	case core.SourceFailedOver:
		fmt.Printf("[%8.3fs] source %s failed over to mirror at tuple %d\n", e.VirtualSeconds, e.Source, e.Tuple)
	case core.SourceAbandoned:
		fmt.Printf("[%8.3fs] source %s ABANDONED at tuple %d (partial=%v): %v\n", e.VirtualSeconds, e.Source, e.Tuple, e.Partial, e.Err)
	case core.MaintenanceStarted:
		fmt.Printf("[%8.3fs] maintenance started over deltas: %v\n", e.VirtualSeconds, e.Relations)
	case core.UpdateWatermark:
		fmt.Printf("[%8.3fs] watermark seq %d: %d updates (%d delta rows so far)\n", e.VirtualSeconds, e.Seq, e.Updates, e.DeltaRows)
	}
}

// runStreaming consumes the streaming cursor: the event subscription
// prints adaptive-execution progress as it happens, and rows are counted
// (and a prefix echoed) as they arrive — before the run completes.
func runStreaming(eng *engine.Engine, q *algebra.Query, o core.Options, limit int) (*core.Report, error) {
	s, err := eng.Stream(context.Background(), q, engine.WithOptions(o))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	events := s.Events()
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range events {
			printEvent(ev)
		}
	}()
	shown := 0
	for tup, rerr := range s.Rows() {
		if rerr != nil {
			<-eventsDone
			return nil, rerr
		}
		if shown < limit {
			fmt.Printf("  row %d: %s\n", shown, types.Tuple(tup))
			shown++
		}
	}
	rep, err := s.Report()
	<-eventsDone // event channel closes once the finished log is drained
	return rep, err
}

// standingScript builds a deterministic churn script against the
// query's largest relation: odd positions re-insert a random existing
// row (bumping its multiplicity), even positions retract one — a
// retraction of an already-deleted row exercises the ingress clamp.
func standingScript(eng *engine.Engine, q *algebra.Query, seed int64, deltaN int) (string, []source.Delta, error) {
	target, n := "", 0
	var rows []types.Tuple
	for _, name := range q.RelationNames() {
		if rel, ok := eng.Relation(name); ok && rel.Len() > n {
			target, n = name, rel.Len()
			rows = rel.Rows
		}
	}
	if target == "" {
		return "", nil, fmt.Errorf("-standing: no registered relation in query")
	}
	rng := rand.New(rand.NewSource(seed))
	script := make([]source.Delta, 0, deltaN)
	at := 0.0
	for i := 0; i < deltaN; i++ {
		at += 0.01
		row := rows[rng.Intn(n)].Clone()
		sign := 1
		if i%2 == 1 {
			sign = -1
		}
		script = append(script, source.Delta{Row: row, Sign: sign, At: at})
	}
	return target, script, nil
}

// runStanding registers the query as a standing view, feeds it the
// seeded delta script, and narrates signed revision updates and
// watermark windows as maintenance emits them, finishing with the
// maintained view and its delta accounting.
func runStanding(eng *engine.Engine, q *algebra.Query, o core.Options, limit int, seed int64, deltaN int) error {
	target, script, err := standingScript(eng, q, seed, deltaN)
	if err != nil {
		return err
	}
	fmt.Printf("standing %s: %d deltas into %s\n", q.Name, len(script), target)
	sq, err := eng.RegisterStanding(context.Background(), q,
		map[string][]source.Delta{target: script}, engine.WithOptions(o))
	if err != nil {
		return err
	}
	defer sq.Close()
	events := sq.Events()
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range events {
			printEvent(ev)
		}
	}()
	// The baseline window (seq 0) asserts the initial result itself, so
	// the row cursor is redundant here; drain it in the background.
	// Report touches the cursor too, so wait for the drain before it.
	rowsDone := make(chan struct{})
	go func() {
		defer close(rowsDone)
		for _, rerr := range sq.Rows() {
			_ = rerr
		}
	}()
	shown := 0
	for {
		win, ok := sq.NextWindow()
		if !ok {
			break
		}
		for _, u := range win.Updates {
			if shown >= limit {
				continue
			}
			sign := "+"
			if u.Sign < 0 {
				sign = "-"
			}
			fmt.Printf("  %s %s  (seq %d)\n", sign, u.Row, win.Watermark.Seq)
			shown++
		}
	}
	<-rowsDone
	rep, err := sq.Report()
	<-eventsDone
	if err != nil {
		return err
	}

	fmt.Printf("\n%s standing view — %d maintained rows\n", q.Name, len(rep.Maintained))
	fmt.Print(engine.FormatRows(rep.Schema, rep.Maintained, limit))
	fmt.Printf("\nmaintenance report:\n")
	fmt.Printf("  virtual time   %.3fs (cpu %.3fs, wall %.3fs)\n",
		rep.VirtualSeconds, rep.CPUSeconds, rep.RealSeconds)
	fmt.Printf("  updates        %d revisions over %d delta rows (%d clamped)\n",
		len(rep.Updates), rep.DeltaRows, rep.DeltaClamped)
	fmt.Printf("  plan switches  %d initial, %d during maintenance\n", rep.Switches, rep.MaintSwitches)
	for name, st := range rep.SourceFaults {
		fmt.Printf("  faults[%s]  transients %d, stalls %d (%.3fs), retries %d (%.3fs backoff)",
			name, st.Transients, st.Stalls, st.StallSeconds, st.Retries, st.BackoffSeconds)
		if st.FailedOver {
			fmt.Print(", failed over to mirror")
		}
		fmt.Println()
	}
	return nil
}

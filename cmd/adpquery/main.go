// Command adpquery runs one workload query over a generated TPC-H-style
// dataset under a chosen execution strategy and prints the results plus
// the adaptive-execution report.
//
// Usage:
//
//	adpquery -query Q10A -strategy corrective -sf 0.01
//	adpquery -query Q5 -strategy static -cards -skewed
//	adpquery -query Q3A -strategy corrective -wireless
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tukwila/adp/internal/core"
	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/engine"
	"github.com/tukwila/adp/internal/opt"
	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/workload"
)

func main() {
	var (
		query    = flag.String("query", "Q3A", "workload query (Q3|Q3A|Q10|Q10A|Q5)")
		strategy = flag.String("strategy", "corrective", "execution strategy (static|corrective|planpart)")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed     = flag.Int64("seed", 42, "generator seed")
		skewed   = flag.Bool("skewed", false, "use the Zipf-skewed dataset")
		cards    = flag.Bool("cards", false, "give the optimizer exact cardinalities")
		wireless = flag.Bool("wireless", false, "deliver sources over a simulated bursty link")
		preagg   = flag.String("preagg", "none", "pre-aggregation (none|windowed|traditional)")
		limit    = flag.Int("limit", 10, "result rows to print")
		poll     = flag.Int("poll", 2048, "corrective polling interval (tuples)")
	)
	flag.Parse()
	if err := run(*query, *strategy, *sf, *seed, *skewed, *cards, *wireless, *preagg, *limit, *poll); err != nil {
		fmt.Fprintln(os.Stderr, "adpquery:", err)
		os.Exit(1)
	}
}

func run(query, strategy string, sf float64, seed int64, skewed, cards, wireless bool, preagg string, limit, poll int) error {
	q, err := workload.ByName(query)
	if err != nil {
		return err
	}
	var strat core.Strategy
	switch strategy {
	case "static":
		strat = core.Static
	case "corrective":
		strat = core.Corrective
	case "planpart":
		strat = core.PlanPartition
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	var pa opt.PreAggMode
	switch preagg {
	case "none":
		pa = opt.PreAggNone
	case "windowed":
		pa = opt.PreAggWindowed
	case "traditional":
		pa = opt.PreAggTraditional
	default:
		return fmt.Errorf("unknown preagg mode %q", preagg)
	}

	fmt.Printf("generating TPC-H sf=%g (skewed=%v) ...\n", sf, skewed)
	d := datagen.Generate(datagen.Config{ScaleFactor: sf, Seed: seed, Skewed: skewed, Z: datagen.DefaultZ})
	var sched func(rel *source.Relation) source.Schedule
	if wireless {
		sched = func(rel *source.Relation) source.Schedule {
			return source.NewBursty(rel.Len(), 1_000_000, 8000, 0.01, seed+int64(rel.Len()))
		}
	}
	cat := core.NewCatalog(d.Relations(), sched)
	o := core.Options{Strategy: strat, PollEvery: poll, PreAgg: pa}
	if cards {
		o.Known = workload.KnownCards(d)
	}
	rep, err := core.Run(cat, q, o)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s (%s) — %d result rows\n", q.Name, strat, len(rep.Rows))
	fmt.Print(engine.FormatRows(rep.Schema, rep.Rows, limit))
	fmt.Printf("\nexecution report:\n")
	fmt.Printf("  virtual time   %.3fs (cpu %.3fs, wall %.3fs)\n",
		rep.VirtualSeconds, rep.CPUSeconds, rep.RealSeconds)
	fmt.Printf("  phases         %d (switches %d)\n", len(rep.Phases), rep.Switches)
	for i, p := range rep.Phases {
		fmt.Printf("    phase %d: %d tuples, %.3fs\n      %s\n", i, p.Delivered, p.Seconds, p.Plan)
	}
	if rep.StitchCombos > 0 {
		fmt.Printf("  stitch-up      %.3fs, %d combinations, %d tuples reused, %d discarded\n",
			rep.StitchTime, rep.StitchCombos, rep.Reused, rep.Discarded)
	}
	return nil
}

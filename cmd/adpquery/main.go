// Command adpquery runs one workload query over a generated TPC-H-style
// dataset under a chosen execution strategy and prints the results plus
// the adaptive-execution report. With -stream it consumes the streaming
// cursor instead: rows print as they arrive and the event subscription
// narrates phase starts, plan switches, and stitch-up live.
//
// Usage:
//
//	adpquery -query Q10A -strategy corrective -sf 0.01
//	adpquery -query Q5 -strategy static -cards -skewed
//	adpquery -query Q3A -strategy corrective -wireless -stream
//	adpquery -query Q10 -strategy corrective -partitions 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/core"
	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/engine"
	"github.com/tukwila/adp/internal/opt"
	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
	"github.com/tukwila/adp/internal/workload"
)

func main() {
	var (
		query      = flag.String("query", "Q3A", "workload query (Q3|Q3A|Q10|Q10A|Q5)")
		strategy   = flag.String("strategy", "corrective", "execution strategy (static|corrective|planpart)")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed       = flag.Int64("seed", 42, "generator seed")
		skewed     = flag.Bool("skewed", false, "use the Zipf-skewed dataset")
		cards      = flag.Bool("cards", false, "give the optimizer exact cardinalities")
		wireless   = flag.Bool("wireless", false, "deliver sources over a simulated bursty link")
		preagg     = flag.String("preagg", "none", "pre-aggregation (none|windowed|traditional)")
		limit      = flag.Int("limit", 10, "result rows to print")
		poll       = flag.Int("poll", 2048, "corrective polling interval (tuples)")
		partitions = flag.Int("partitions", 1, "partition-parallel width for phase execution (<=1 = serial)")
		stream     = flag.Bool("stream", false, "consume the streaming cursor: live rows + adaptive-event progress")
	)
	flag.Parse()
	if err := run(*query, *strategy, *sf, *seed, *skewed, *cards, *wireless, *preagg, *limit, *poll, *partitions, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "adpquery:", err)
		os.Exit(1)
	}
}

func run(query, strategy string, sf float64, seed int64, skewed, cards, wireless bool, preagg string, limit, poll, partitions int, stream bool) error {
	q, err := workload.ByName(query)
	if err != nil {
		return err
	}
	var strat core.Strategy
	switch strategy {
	case "static":
		strat = core.Static
	case "corrective":
		strat = core.Corrective
	case "planpart":
		strat = core.PlanPartition
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	var pa opt.PreAggMode
	switch preagg {
	case "none":
		pa = opt.PreAggNone
	case "windowed":
		pa = opt.PreAggWindowed
	case "traditional":
		pa = opt.PreAggTraditional
	default:
		return fmt.Errorf("unknown preagg mode %q", preagg)
	}

	fmt.Printf("generating TPC-H sf=%g (skewed=%v) ...\n", sf, skewed)
	d := datagen.Generate(datagen.Config{ScaleFactor: sf, Seed: seed, Skewed: skewed, Z: datagen.DefaultZ})
	eng := engine.New()
	for _, rel := range d.Relations() {
		if wireless {
			eng.RegisterRemote(rel, source.NewBursty(rel.Len(), 1_000_000, 8000, 0.01, seed+int64(rel.Len())))
		} else {
			eng.Register(rel)
		}
	}
	o := core.Options{Strategy: strat, PollEvery: poll, PreAgg: pa, Partitions: partitions}
	if cards {
		o.Known = workload.KnownCards(d)
	}

	var rep *core.Report
	if stream {
		rep, err = runStreaming(eng, q, o, limit)
	} else {
		rep, err = eng.Execute(q, o)
	}
	if err != nil {
		return err
	}

	fmt.Printf("\n%s (%s) — %d result rows\n", q.Name, strat, len(rep.Rows))
	fmt.Print(engine.FormatRows(rep.Schema, rep.Rows, limit))
	fmt.Printf("\nexecution report:\n")
	fmt.Printf("  virtual time   %.3fs (cpu %.3fs, wall %.3fs)\n",
		rep.VirtualSeconds, rep.CPUSeconds, rep.RealSeconds)
	fmt.Printf("  phases         %d (switches %d)\n", len(rep.Phases), rep.Switches)
	for i, p := range rep.Phases {
		fmt.Printf("    phase %d: %d tuples, %.3fs\n      %s\n", i, p.Delivered, p.Seconds, p.Plan)
	}
	if rep.StitchCombos > 0 {
		fmt.Printf("  stitch-up      %.3fs, %d combinations, %d tuples reused, %d discarded\n",
			rep.StitchTime, rep.StitchCombos, rep.Reused, rep.Discarded)
	}
	return nil
}

// runStreaming consumes the streaming cursor: the event subscription
// prints adaptive-execution progress as it happens, and rows are counted
// (and a prefix echoed) as they arrive — before the run completes.
func runStreaming(eng *engine.Engine, q *algebra.Query, o core.Options, limit int) (*core.Report, error) {
	s, err := eng.Stream(context.Background(), q, engine.WithOptions(o))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	events := s.Events()
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range events {
			switch e := ev.(type) {
			case core.PhaseStarted:
				fmt.Printf("[%8.3fs] phase %d started (P=%d): %s\n", e.VirtualSeconds, e.Phase, e.Partitions, e.Plan)
			case core.PlanSwitched:
				fmt.Printf("[%8.3fs] plan switch: cand %.3g + stitch %.3g < %.3g remaining\n             %s\n          -> %s\n",
					e.VirtualSeconds, e.CandidateCost, e.StitchPenalty, e.CurrentRemaining, e.From, e.To)
			case core.StitchUpStarted:
				fmt.Printf("[%8.3fs] stitch-up over %d phases\n", e.VirtualSeconds, e.Phases)
			case core.PartitionStats:
				fmt.Printf("[%8.3fs] phase %d partition seconds: %v\n", e.VirtualSeconds, e.Phase, e.Seconds)
			case core.RowsDelivered:
				fmt.Printf("[%8.3fs] %d rows delivered\n", e.VirtualSeconds, e.Rows)
			}
		}
	}()
	shown := 0
	for tup, rerr := range s.Rows() {
		if rerr != nil {
			<-eventsDone
			return nil, rerr
		}
		if shown < limit {
			fmt.Printf("  row %d: %s\n", shown, types.Tuple(tup))
			shown++
		}
	}
	rep, err := s.Report()
	<-eventsDone // event channel closes once the finished log is drained
	return rep, err
}

// Command tpchgen emits the synthetic TPC-H-style evaluation dataset as
// CSV files, one per table, for inspection or for loading into other
// systems.
//
// Usage:
//
//	tpchgen -sf 0.01 -out ./data
//	tpchgen -sf 0.1 -skewed -out ./data-skewed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/source"
)

func main() {
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor (TPC-H SF 1 = 150k customers)")
		seed   = flag.Int64("seed", 42, "generator seed")
		skewed = flag.Bool("skewed", false, "Zipf-skew the major attributes (z=0.5)")
		out    = flag.String("out", "data", "output directory")
	)
	flag.Parse()
	d := datagen.Generate(datagen.Config{ScaleFactor: *sf, Seed: *seed, Skewed: *skewed, Z: datagen.DefaultZ})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	for name, rel := range d.Relations() {
		if err := writeCSV(filepath.Join(*out, name+".csv"), rel); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d rows\n", name, rel.Len())
	}
}

func writeCSV(path string, rel *source.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	// Header: unqualified column names.
	names := make([]string, rel.Schema.Len())
	for i, c := range rel.Schema.Cols {
		n := c.Name
		if dot := strings.LastIndexByte(n, '.'); dot >= 0 {
			n = n[dot+1:]
		}
		names[i] = n
	}
	fmt.Fprintln(w, strings.Join(names, ","))
	for _, row := range rel.Rows {
		for i, v := range row {
			if i > 0 {
				w.WriteByte(',')
			}
			s := v.String()
			if strings.ContainsAny(s, ",\"\n") {
				s = "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
			}
			w.WriteString(s)
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}

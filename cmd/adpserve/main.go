// Command adpserve serves the adaptive query engine over HTTP: a
// generated TPC-H-style dataset behind the streaming wire protocol
// (docs/wire-protocol.md), with admission control, plan caching, and
// graceful drain on SIGTERM (docs/operations.md).
//
// Usage:
//
//	adpserve -addr :8080 -sf 0.01
//	adpserve -addr :0 -sf 0.005 -skewed -cards
//	adpserve -fault random -fault-rel lineitem -fault-seed 7
//
// The workload queries (Q3, Q3A, Q10, Q10A, Q5) are pre-registered and
// invocable by name:
//
//	curl -sN localhost:8080/v1/query -d '{"query":{"prepared":"Q3A"},
//	    "options":{"strategy":"corrective","partitions":4}}'
//
// The server prints "adpserve: listening on <addr>" once the listener is
// bound (so -addr :0 is scriptable), serves until SIGINT/SIGTERM, then
// drains: no new queries are admitted and every in-flight stream runs to
// completion before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/engine"
	"github.com/tukwila/adp/internal/server"
	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (:0 picks a free port)")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed     = flag.Int64("seed", 42, "generator seed")
		skewed   = flag.Bool("skewed", false, "use the Zipf-skewed dataset")
		cards    = flag.Bool("cards", false, "advertise exact cardinalities to the optimizer")
		wireless = flag.Bool("wireless", false, "deliver sources over a simulated bursty link")

		maxConcurrent = flag.Int("max-concurrent", 8, "queries executing at once")
		queueDepth    = flag.Int("queue-depth", 32, "admission queue depth (0 rejects at saturation)")
		queueTimeout  = flag.Duration("queue-timeout", 5*time.Second, "max admission-queue wait")
		deadline      = flag.Duration("deadline", 30*time.Second, "default per-query execution deadline")
		maxDeadline   = flag.Duration("max-deadline", 0, "cap on request-supplied deadlines (0 = uncapped)")
		maxPartitions = flag.Int("max-partitions", 8, "per-query partition budget")
		maxRows       = flag.Int64("max-rows", 0, "per-query result-row budget (0 = unlimited)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound on SIGTERM")
		planCache     = flag.Int("plan-cache", 0, "plan cache entries (0 = default, <0 disables)")

		fault     = flag.String("fault", "", "inject faults into one relation (transient|stall|dead|failover|random)")
		faultRel  = flag.String("fault-rel", "lineitem", "relation the -fault schedule targets")
		faultSeed = flag.Int64("fault-seed", 1, "seed for -fault random schedules")
	)
	flag.Parse()

	cfg := server.Config{
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		QueueTimeout:    *queueTimeout,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxPartitions:   *maxPartitions,
		MaxRowsPerQuery: *maxRows,
		DrainTimeout:    *drainTimeout,
		PlanCacheSize:   *planCache,
	}
	if err := run(*addr, *sf, *seed, *skewed, *cards, *wireless, cfg, *fault, *faultRel, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "adpserve:", err)
		os.Exit(1)
	}
}

func run(addr string, sf float64, seed int64, skewed, cards, wireless bool, cfg server.Config, fault, faultRel string, faultSeed int64) error {
	fmt.Printf("adpserve: generating TPC-H sf=%g (skewed=%v) ...\n", sf, skewed)
	d := datagen.Generate(datagen.Config{ScaleFactor: sf, Seed: seed, Skewed: skewed, Z: datagen.DefaultZ})
	eng := engine.New()
	for _, rel := range d.Relations() {
		if wireless {
			eng.RegisterRemote(rel, source.NewBursty(rel.Len(), 1_000_000, 8000, 0.01, seed+int64(rel.Len())))
		} else {
			eng.Register(rel)
		}
	}
	if cards {
		for name, card := range workload.KnownCards(d) {
			eng.AdvertiseCardinality(name, card)
		}
	}
	if fault != "" {
		policy, err := injectFaults(eng, fault, faultRel, faultSeed)
		if err != nil {
			return err
		}
		cfg.SourcePolicies = map[string]source.RetryPolicy{faultRel: policy}
		fmt.Printf("adpserve: injecting %s fault(s) into %s\n", fault, faultRel)
	}

	svc := server.New(eng, cfg)
	for _, q := range workload.All() {
		svc.RegisterPrepared(q.Name, q)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("adpserve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: svc}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Printf("adpserve: %s — draining (in-flight queries run to completion) ...\n", sig)
	}

	// Drain: stop admitting, let cursors finish, then close the listener.
	if err := svc.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "adpserve: drain incomplete: %v\n", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("adpserve: drained, bye")
	return nil
}

// injectFaults arms a canned fault scenario on one registered relation
// and returns the matching recovery policy, mirroring the library path
// (Engine.InjectFaults + Options.SourcePolicies) — the worked chaos
// example in docs/operations.md drives exactly this.
func injectFaults(eng *engine.Engine, mode, rel string, seed int64) (source.RetryPolicy, error) {
	r, ok := eng.Relation(rel)
	if !ok {
		return source.RetryPolicy{}, fmt.Errorf("-fault-rel: unknown relation %q", rel)
	}
	n := r.Len()
	policy := source.RetryPolicy{MaxAttempts: 4, Backoff: 0.5}
	switch mode {
	case "transient":
		eng.InjectFaults(rel, source.NewFaultSchedule(
			source.Fault{At: n / 3, Kind: source.FaultTransient, Times: 2}))
	case "stall":
		eng.InjectFaults(rel, source.NewFaultSchedule(
			source.Fault{At: n / 4, Kind: source.FaultStall, Stall: 5}))
	case "dead":
		eng.InjectFaults(rel, source.NewFaultSchedule(
			source.Fault{At: n / 2, Kind: source.FaultPermanent}))
	case "failover":
		policy.Mirror = r
		policy.FailoverDelay = 2
		eng.InjectFaults(rel, source.NewFaultSchedule(
			source.Fault{At: n / 2, Kind: source.FaultPermanent}))
	case "random":
		eng.InjectFaults(rel, source.RandomFaults(n, 6, 3.0, seed))
	default:
		return policy, fmt.Errorf("unknown -fault mode %q (transient|stall|dead|failover|random)", mode)
	}
	return policy, nil
}

package adp_test

import (
	"context"
	"strings"
	"testing"

	adp "github.com/tukwila/adp"
)

// TestPublicAPIStreaming smokes the streaming cursor through the public
// surface: functional options, the rows iterator, the event replay, and
// Execute/Stream equivalence.
func TestPublicAPIStreaming(t *testing.T) {
	eng, q := buildDemo()
	ref, err := eng.Execute(q, adp.Options{Strategy: adp.StrategyCorrective, PollEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(context.Background(), q,
		adp.WithStrategy(adp.StrategyCorrective),
		adp.WithPollEvery(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var rows []adp.Tuple
	for r, rerr := range s.Rows() {
		if rerr != nil {
			t.Fatal(rerr)
		}
		rows = append(rows, r)
	}
	rep, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ref.Rows) {
		t.Fatalf("streamed %d rows, Execute returned %d", len(rows), len(ref.Rows))
	}
	for i := range rows {
		if rows[i].String() != ref.Rows[i].String() {
			t.Fatalf("row %d: %s vs %s", i, rows[i], ref.Rows[i])
		}
	}
	if rep.VirtualSeconds != ref.VirtualSeconds {
		t.Errorf("clocks differ: %g vs %g", rep.VirtualSeconds, ref.VirtualSeconds)
	}
	var sawPhase bool
	var final adp.RowsDelivered
	for ev := range s.Events() {
		switch e := ev.(type) {
		case adp.PhaseStarted:
			sawPhase = true
		case adp.RowsDelivered:
			final = e
		}
	}
	if !sawPhase || final.Rows != int64(len(rows)) {
		t.Errorf("event replay incomplete: phase=%v finalRows=%d want %d", sawPhase, final.Rows, len(rows))
	}
}

// buildDemo assembles a tiny orders/customers engine through the public
// API only — this is the package's integration smoke test.
func buildDemo() (*adp.Engine, *adp.Query) {
	orders := adp.NewRelation("orders", adp.NewSchema(
		adp.Col{Name: "orders.id", Kind: adp.KindInt},
		adp.Col{Name: "orders.custkey", Kind: adp.KindInt},
		adp.Col{Name: "orders.total", Kind: adp.KindFloat},
	), nil)
	for i := int64(0); i < 500; i++ {
		orders.Rows = append(orders.Rows, adp.Tuple{
			adp.Int(i), adp.Int(i % 25), adp.Float(float64(i)),
		})
	}
	custs := adp.NewRelation("customers", adp.NewSchema(
		adp.Col{Name: "customers.custkey", Kind: adp.KindInt},
		adp.Col{Name: "customers.name", Kind: adp.KindString},
	), nil)
	for i := int64(0); i < 25; i++ {
		custs.Rows = append(custs.Rows, adp.Tuple{adp.Int(i), adp.Str("cust" + adp.Int(i).String())})
	}
	eng := adp.NewEngine()
	eng.Register(orders)
	eng.Register(custs)
	q := eng.Query("spend").
		From("orders", "customers").
		Join("orders", "custkey", "customers", "custkey").
		GroupBy("customers.name").
		Agg(adp.AggSum, adp.Column("orders.total"), "spend").
		Agg(adp.AggCount, nil, "orders").
		MustBuild()
	return eng, q
}

func TestPublicAPIEndToEnd(t *testing.T) {
	eng, q := buildDemo()
	for _, strat := range []adp.Strategy{adp.StrategyStatic, adp.StrategyCorrective, adp.StrategyPlanPartition} {
		rep, err := eng.Execute(q, adp.Options{Strategy: strat, PollEvery: 64})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(rep.Rows) != 25 {
			t.Fatalf("%v: %d groups, want 25", strat, len(rep.Rows))
		}
		var spend float64
		var n int64
		for _, r := range rep.Rows {
			spend += r[1].AsFloat()
			n += r[2].AsInt()
		}
		if spend != 499*500/2 || n != 500 {
			t.Errorf("%v: totals wrong: spend=%g n=%d", strat, spend, n)
		}
	}
}

func TestPublicAPIPartitionParallel(t *testing.T) {
	eng, q := buildDemo()
	rep, err := eng.Execute(q, adp.Options{Strategy: adp.StrategyStatic, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partitions != 4 {
		t.Errorf("partitions = %d, want 4", rep.Partitions)
	}
	if len(rep.Phases) != 1 || len(rep.Phases[0].PartitionSeconds) != 4 {
		t.Fatalf("per-partition clocks not reported: %+v", rep.Phases)
	}
	if len(rep.Rows) != 25 {
		t.Fatalf("%d groups, want 25", len(rep.Rows))
	}
	var spend float64
	var n int64
	for _, r := range rep.Rows {
		spend += r[1].AsFloat()
		n += r[2].AsInt()
	}
	if spend != 499*500/2 || n != 500 {
		t.Errorf("totals wrong: spend=%g n=%d", spend, n)
	}
}

func TestPublicAPIPreAggAndRemote(t *testing.T) {
	eng, q := buildDemo()
	rel, _ := eng.Relation("orders")
	eng.RegisterRemote(rel, adp.Bandwidth{TuplesPerSec: 100000})
	rep, err := eng.Execute(q, adp.Options{
		Strategy: adp.StrategyStatic,
		PreAgg:   adp.PreAggWindowed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 25 {
		t.Fatalf("groups = %d", len(rep.Rows))
	}
	if rep.VirtualSeconds <= 0 {
		t.Error("no virtual time recorded")
	}
	out := adp.FormatRows(rep.Schema, rep.Rows, 5)
	if !strings.Contains(out, "spend") {
		t.Errorf("FormatRows missing header:\n%s", out)
	}
}

func TestPublicAPIDatasetAndComplementaryJoin(t *testing.T) {
	d := adp.GenerateDataset(adp.DatagenConfig{ScaleFactor: 0.002, Seed: 3})
	li, ord := d.Lineitem, d.Orders
	ctx := adp.NewExecContext()
	var n int
	cj := adp.NewComplementaryJoin(ctx, li.Schema, ord.Schema,
		[]int{li.Schema.MustIndexOf("l_orderkey")},
		[]int{ord.Schema.MustIndexOf("o_orderkey")},
		adp.DefaultPQCap,
		adp.SinkFunc(func(adp.Tuple) { n++ }))
	for _, r := range li.Rows {
		cj.PushLeft(r)
	}
	for _, r := range ord.Rows {
		cj.PushRight(r)
	}
	cj.Finish()
	if n != li.Len() {
		t.Errorf("FK join output %d, want %d", n, li.Len())
	}
	if cj.Stats.MergeOut != int64(n) {
		t.Errorf("sorted inputs should all merge-join: %+v", cj.Stats)
	}
	// Reorder helpers exposed.
	sh := adp.Shuffle(ord, 1)
	if sh.Len() != ord.Len() {
		t.Error("Shuffle broken")
	}
	rf := adp.ReorderFraction(ord, 0.5, 1)
	srt := adp.SortBy(rf, "o_orderkey")
	if srt.Rows[0][0].I != 0 {
		t.Error("SortBy broken")
	}
}

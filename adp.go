package adp

import (
	"github.com/tukwila/adp/internal/algebra"
	"github.com/tukwila/adp/internal/core"
	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/engine"
	"github.com/tukwila/adp/internal/exec"
	"github.com/tukwila/adp/internal/expr"
	"github.com/tukwila/adp/internal/ivm"
	"github.com/tukwila/adp/internal/opt"
	"github.com/tukwila/adp/internal/server"
	"github.com/tukwila/adp/internal/source"
	"github.com/tukwila/adp/internal/types"
)

// ---- Values, tuples, schemas ------------------------------------------

// Kind is a scalar type tag.
type Kind = types.Kind

// Scalar kinds.
const (
	KindNull   = types.KindNull
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
)

// Value is a dynamically typed scalar.
type Value = types.Value

// Tuple is a row: a vector of values aligned with a Schema.
type Tuple = types.Tuple

// Schema describes a tuple layout.
type Schema = types.Schema

// Col is one schema column.
type Col = types.Column

// Scalar constructors.
var (
	// Int builds an integer value.
	Int = types.Int
	// Float builds a float value.
	Float = types.Float
	// Str builds a string value.
	Str = types.Str
	// Null builds the NULL value.
	Null = types.Null
	// NewSchema builds a schema from columns.
	NewSchema = types.NewSchema
)

// ---- Expressions -------------------------------------------------------

// Expr is a scalar expression; Predicate is a boolean one.
type (
	// Expr is a scalar expression over tuples.
	Expr = expr.Expr
	// Predicate is a boolean expression over tuples.
	Predicate = expr.Predicate
)

// Expression constructors.
var (
	// Column references a (possibly qualified) column.
	Column = expr.Column
	// IntLit, FloatLit, StrLit build literals.
	IntLit   = expr.IntLit
	FloatLit = expr.FloatLit
	StrLit   = expr.StrLit
	// Arithmetic.
	Add = expr.Add
	Sub = expr.Sub
	Mul = expr.Mul
	Div = expr.Div
	// Comparisons.
	Eq = expr.Eq
	Ne = expr.Ne
	Lt = expr.Lt
	Le = expr.Le
	Gt = expr.Gt
	Ge = expr.Ge
	// Connectives.
	And = expr.AndOf
	Or  = expr.OrOf
	Not = expr.NotOf
)

// ---- Queries -----------------------------------------------------------

// Query is a validated select-project-join-aggregate query.
type Query = algebra.Query

// AggKind names an aggregate function.
type AggKind = algebra.AggKind

// Aggregate functions (all distribute over union, enabling ADP's shared
// group-by and pre-aggregation).
const (
	AggMin   = algebra.AggMin
	AggMax   = algebra.AggMax
	AggSum   = algebra.AggSum
	AggCount = algebra.AggCount
	AggAvg   = algebra.AggAvg
)

// ---- Sources -----------------------------------------------------------

// Relation is an in-memory table registered with the engine.
type Relation = source.Relation

// NewRelation builds a relation from a schema and rows.
var NewRelation = source.NewRelation

// Schedule assigns virtual arrival times to a remote source's tuples.
type Schedule = source.Schedule

// Delivery schedules.
type (
	// Immediate delivers everything at t=0 (local data).
	Immediate = source.Immediate
	// Bandwidth delivers at a constant tuple rate.
	Bandwidth = source.Bandwidth
	// Bursty models a congested wireless-style link.
	Bursty = source.Bursty
)

// NewBursty precomputes a deterministic bursty arrival schedule.
var NewBursty = source.NewBursty

// Dataset-shaping helpers (experiments, demos).
var (
	// SortBy returns a copy of a relation sorted on one column.
	SortBy = source.SortBy
	// ReorderFraction randomly displaces a fraction of tuples.
	ReorderFraction = source.ReorderFraction
	// Shuffle fully randomizes row order.
	Shuffle = source.Shuffle
)

// ---- Source fault tolerance ---------------------------------------------

// FaultKind classifies an injected source fault.
type FaultKind = source.FaultKind

// Fault kinds.
const (
	// FaultTransient fails one tuple's read for Times attempts.
	FaultTransient = source.FaultTransient
	// FaultStall delays the source by Stall virtual seconds.
	FaultStall = source.FaultStall
	// FaultPermanent kills the source at the scheduled tuple.
	FaultPermanent = source.FaultPermanent
)

// Fault is one scheduled source fault.
type Fault = source.Fault

// FaultSchedule is an ordered, deterministic list of faults for one
// source, installed with Engine.InjectFaults.
type FaultSchedule = source.FaultSchedule

// Fault-schedule constructors.
var (
	// NewFaultSchedule builds a schedule ordered by trigger index.
	NewFaultSchedule = source.NewFaultSchedule
	// RandomFaults draws a deterministic seeded mix of transient faults
	// and stalls (the chaos suite's generator).
	RandomFaults = source.RandomFaults
)

// RetryPolicy describes how one source's reads recover from faults:
// bounded retries with exponential backoff in virtual seconds, and an
// optional mirror relation to fail over to. Install per run with
// WithSourcePolicy.
type RetryPolicy = source.RetryPolicy

// SourceError is the typed terminal error of a permanently failed
// source; fail-fast runs return it (unwrap with errors.As).
type SourceError = source.SourceError

// FaultStats counts one source's fault and recovery activity; the final
// Report carries one entry per faulting source in SourceFaults.
type FaultStats = source.FaultStats

// ---- Engine ------------------------------------------------------------

// Engine owns a catalog of sources and executes queries.
type Engine = engine.Engine

// NewEngine creates an empty engine.
func NewEngine() *Engine { return engine.New() }

// Strategy selects the execution regime.
type Strategy = core.Strategy

// Execution strategies.
const (
	// StrategyStatic optimizes once and runs to completion.
	StrategyStatic = core.Static
	// StrategyCorrective runs corrective query processing: monitor,
	// switch plans mid-stream, stitch up at the end (the paper's §4).
	StrategyCorrective = core.Corrective
	// StrategyPlanPartition materializes after a fixed number of joins
	// and re-optimizes the remainder (the §4.4 baseline).
	StrategyPlanPartition = core.PlanPartition
)

// PreAggMode selects pre-aggregation handling (the paper's §6).
type PreAggMode = opt.PreAggMode

// Pre-aggregation modes.
const (
	// PreAggNone aggregates only at the top of the plan.
	PreAggNone = opt.PreAggNone
	// PreAggTraditional inserts a blocking pre-aggregate where estimated
	// beneficial.
	PreAggTraditional = opt.PreAggTraditional
	// PreAggWindowed inserts the adjustable-window operator everywhere it
	// applies; it self-regulates at runtime.
	PreAggWindowed = opt.PreAggWindowed
)

// Options configures one execution.
type Options = core.Options

// Report is the outcome: rows plus the adaptive-execution narrative.
type Report = core.Report

// PhaseInfo describes one executed phase.
type PhaseInfo = core.PhaseInfo

// FormatRows renders result rows as an aligned text table.
var FormatRows = engine.FormatRows

// ---- Streaming execution -------------------------------------------------

// Stream is a streaming execution cursor returned by Engine.Stream: root
// result rows arrive incrementally (Next / Rows) while the run executes
// in the background, a typed event subscription (Events) narrates the
// adaptive-execution lifecycle, and Report returns the final execution
// report. Always Close a stream; see the package documentation's
// "Streaming results" section for the cursor lifecycle and ordering
// guarantees.
type Stream = engine.Stream

// Option is a functional execution option accepted by Engine.Stream,
// layered over Options.
type Option = engine.Option

// Functional execution options.
var (
	// WithStrategy selects the execution regime.
	WithStrategy = engine.WithStrategy
	// WithPartitions sets the partition-parallel width (<= 1 = serial).
	WithPartitions = engine.WithPartitions
	// WithPreAgg selects pre-aggregation handling.
	WithPreAgg = engine.WithPreAgg
	// WithPollEvery sets the monitor polling / row-flush cadence in
	// delivered tuples.
	WithPollEvery = engine.WithPollEvery
	// WithSwitchFactor sets the corrective switch threshold.
	WithSwitchFactor = engine.WithSwitchFactor
	// WithMaxPhases caps corrective phase switching.
	WithMaxPhases = engine.WithMaxPhases
	// WithInstrument attaches per-leaf histograms and order detectors.
	WithInstrument = engine.WithInstrument
	// WithKnownCardinality records one source-supplied cardinality.
	WithKnownCardinality = engine.WithKnownCardinality
	// WithSourcePolicy sets one relation's fault-recovery policy.
	WithSourcePolicy = engine.WithSourcePolicy
	// WithPartialResults degrades gracefully on unrecoverable source
	// failure instead of failing the run.
	WithPartialResults = engine.WithPartialResults
	// WithOptions replaces the whole configuration with a prebuilt
	// Options value (apply first when mixed with other options).
	WithOptions = engine.WithOptions
)

// Event is a typed notification from a streaming run; concrete types are
// PhaseStarted, PlanSwitched, StitchUpStarted, PartitionStats,
// RowsDelivered, and the source-degradation narrative SourceStalled,
// SourceRetried, SourceFailedOver, SourceAbandoned.
type Event = core.Event

// Streaming run events.
type (
	// PhaseStarted marks the start of one execution phase.
	PhaseStarted = core.PhaseStarted
	// PlanSwitched reports a corrective-monitor plan switch with the cost
	// estimates that triggered it (§4.1).
	PlanSwitched = core.PlanSwitched
	// StitchUpStarted marks the start of the cross-phase stitch-up (§3.4).
	StitchUpStarted = core.StitchUpStarted
	// PartitionStats reports per-partition timing for one completed
	// partition-parallel phase.
	PartitionStats = core.PartitionStats
	// RowsDelivered is a cumulative result-delivery watermark.
	RowsDelivered = core.RowsDelivered
	// SourceStalled reports an injected source stall (also a
	// cost-estimate violation for the corrective monitor).
	SourceStalled = core.SourceStalled
	// SourceRetried reports one recovered read attempt.
	SourceRetried = core.SourceRetried
	// SourceFailedOver reports a source switching to its mirror.
	SourceFailedOver = core.SourceFailedOver
	// SourceAbandoned reports a permanently failed source.
	SourceAbandoned = core.SourceAbandoned
	// MaintenanceStarted marks the hand-off from the initial run to
	// incremental maintenance of a standing query.
	MaintenanceStarted = core.MaintenanceStarted
	// UpdateWatermark closes one standing-query update window.
	UpdateWatermark = core.UpdateWatermark
)

// ---- Standing queries (incremental view maintenance) ---------------------

// Delta is one signed change to a base relation: Sign +1 inserts Row,
// -1 deletes one matching duplicate, at virtual time At.
type Delta = source.Delta

var (
	// Ins builds an insert delta arriving at the given virtual time.
	Ins = source.Ins
	// Del builds a delete delta arriving at the given virtual time.
	Del = source.Del
)

// Update is one signed revision to a standing query's result: an
// assertion (Sign +1) or retraction (-1) of Row.
type Update = ivm.Update

// StandingQuery is a registered incremental view returned by
// Engine.RegisterStanding: the query runs once over the base sources,
// then signed deltas stream through the same lowered plan, revising the
// result at watermark boundaries instead of recomputing from scratch.
// Consume the initial result with Next/Rows, revisions with
// NextUpdate/NextWindow/Updates, then Report (Report.Maintained holds
// the current view) and always Close.
type StandingQuery = engine.StandingQuery

// StandingWindow is one watermark window of standing-query updates.
type StandingWindow = engine.StandingWindow

// ---- Direct operator access (advanced) ----------------------------------

// HashJoin is the binary hash-join push operator (pipelined/symmetric,
// build-then-probe, or nested-loops style).
type HashJoin = exec.HashJoin

// NewHashJoin builds a join node delivering concatenated (left ++ right)
// tuples to a sink.
var NewHashJoin = exec.NewHashJoin

// JoinStyle selects the join's iterator module.
type JoinStyle = exec.JoinStyle

// Join styles.
const (
	// JoinPipelined is the symmetric (data-availability-driven) hash join.
	JoinPipelined = exec.Pipelined
	// JoinBuildThenProbe is the hybrid-hash style.
	JoinBuildThenProbe = exec.BuildThenProbe
	// JoinNestedLoops buffers the inner side in a list.
	JoinNestedLoops = exec.NestedLoops
)

// ComplementaryJoin is the merge/hash complementary join pair of §5.
type ComplementaryJoin = core.ComplementaryJoin

// NewComplementaryJoin builds a pair; pqCap > 0 enables the priority-queue
// router (DefaultPQCap reproduces the paper's 1024).
var NewComplementaryJoin = core.NewComplementaryJoin

// DefaultPQCap is the paper's reorder-buffer capacity.
const DefaultPQCap = core.DefaultPQCap

// Exchange hash-partitions a tuple stream across partition-parallel
// pipelines on its key columns (the boundary operator of partitioned
// execution; Options.Partitions drives the whole machinery end to end,
// this type is for direct operator assemblies).
type Exchange = exec.Exchange

// NewExchange builds an exchange over a partition count, key columns, and
// a per-partition route callback.
var NewExchange = exec.NewExchange

// ParallelDriver runs one partitioned plan as per-partition pipelines on
// worker goroutines (advanced; see Options.Partitions for the integrated
// path).
type ParallelDriver = exec.ParallelDriver

// NewParallelDriver creates a parallel driver over per-partition
// execution contexts.
var NewParallelDriver = exec.NewParallelDriver

// ExecContext carries the virtual clock and cost model for direct operator
// use.
type ExecContext = exec.Context

// NewExecContext creates a fresh context.
var NewExecContext = exec.NewContext

// Sink receives tuples from push operators.
type Sink = exec.Sink

// BatchSink is the vectorized extension of Sink: operators that implement
// it accept whole batches of tuples per call (see doc.go, "Batched push
// execution").
type BatchSink = exec.BatchSink

// SinkFunc adapts a function to a Sink.
type SinkFunc = exec.SinkFunc

// ---- Plan cache ----------------------------------------------------------

// Fingerprint returns the canonical query-shape fingerprint used as the
// plan-cache key: query structure plus the optimizer-relevant options
// (pre-aggregation mode, advertised cardinalities), excluding execution
// knobs like strategy and partitions.
var Fingerprint = engine.Fingerprint

// PlanCache is a concurrency-safe LRU cache of initial optimized plans
// keyed by Fingerprint; a hit lets a run skip the optimizer entirely and
// is semantically inert (byte-identical rows).
type PlanCache = engine.PlanCache

// PlanCacheStats is a point-in-time snapshot of a cache's hit/miss/size
// counters.
type PlanCacheStats = engine.PlanCacheStats

// NewPlanCache creates a plan cache (capacity <= 0 selects
// DefaultPlanCacheSize).
var NewPlanCache = engine.NewPlanCache

// DefaultPlanCacheSize is the capacity NewPlanCache defaults to.
const DefaultPlanCacheSize = engine.DefaultPlanCacheSize

// ---- Query service -------------------------------------------------------

// Server serves Engine.Stream over HTTP: POST /v1/query streams results
// as NDJSON frames, GET /v1/query/{id}/events replays the
// adaptive-execution event feed as server-sent events, plus /healthz and
// Prometheus-text /metrics. It layers admission control, per-query
// deadline/partition/row budgets, a Fingerprint-keyed plan cache, and
// graceful drain over the engine; see docs/wire-protocol.md and
// docs/operations.md. Server implements http.Handler for in-process
// embedding (examples/server); cmd/adpserve is the deployable binary.
type Server = server.Server

// ServerConfig tunes a Server's admission, budgets, plan cache, drain,
// and source fault policies; the zero value selects production defaults.
type ServerConfig = server.Config

// NewServer builds a query service over an engine.
var NewServer = server.New

// WireProtocolVersion is the query service's wire protocol version (the
// /v1 path prefix).
const WireProtocolVersion = server.ProtocolVersion

// ---- TPC-H-style data generation ----------------------------------------

// DatagenConfig configures the synthetic TPC-H-style generator.
type DatagenConfig = datagen.Config

// Dataset is a generated database.
type Dataset = datagen.Dataset

// GenerateDataset builds a dataset (uniform, or Zipf-skewed with
// Skewed: true as in the paper's skewed TPC-D variant).
var GenerateDataset = datagen.Generate

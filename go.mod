module github.com/tukwila/adp

go 1.24.0

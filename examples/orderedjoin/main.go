// Exploiting order with complementary join pairs (§5): joining
// "mostly sorted" relations — bulk-loaded in key order, then perturbed by
// later updates — with a merge join for the in-order stream, a pipelined
// hash join for the stragglers, and a mini stitch-up across the two.
package main

import (
	"fmt"
	"log"

	adp "github.com/tukwila/adp"
)

func main() {
	// A key-sorted dataset: orders and their lineitems.
	d := adp.GenerateDataset(adp.DatagenConfig{ScaleFactor: 0.01, Seed: 11})
	li, ord := d.Lineitem, d.Orders
	lKey := []int{li.Schema.MustIndexOf("l_orderkey")}
	oKey := []int{ord.Schema.MustIndexOf("o_orderkey")}

	fmt.Println("LINEITEM ⋈ ORDERS under increasing disorder:")
	fmt.Printf("%-10s | %-12s %-12s %-12s | %s\n",
		"reordered", "hash only", "compl.", "compl.+pq", "pq routing (merge/hash/stitch outputs)")
	for _, frac := range []float64{0, 0.01, 0.10, 0.50} {
		liR := adp.ReorderFraction(li, frac, 1)
		ordR := adp.ReorderFraction(ord, frac, 2)

		hash := runHash(liR, ordR, lKey, oKey)
		naive, _ := runPair(liR, ordR, lKey, oKey, 0)
		pq, st := runPair(liR, ordR, lKey, oKey, adp.DefaultPQCap)

		fmt.Printf("%9.0f%% | %10.4fs %10.4fs %10.4fs | %d / %d / %d\n",
			frac*100, hash, naive, pq, st.Stats.MergeOut, st.Stats.HashOut, st.Stats.StitchOut)
	}
	fmt.Println("\nOn sorted data the pair routes everything to the cheap merge join;")
	fmt.Println("with light disorder the priority-queue router keeps the merge join")
	fmt.Println("useful; heavy disorder degrades gracefully to the hash join.")
}

// runHash is the Figure 5 baseline: a plain pipelined hash join.
func runHash(li, ord *adp.Relation, lKey, oKey []int) float64 {
	ctx := adp.NewExecContext()
	n := 0
	j := adp.NewHashJoin(ctx, adp.JoinPipelined, li.Schema, ord.Schema, lKey, oKey,
		adp.SinkFunc(func(adp.Tuple) { n++ }))
	i, k := 0, 0
	for i < len(li.Rows) || k < len(ord.Rows) {
		if i < len(li.Rows) {
			j.PushLeft(li.Rows[i])
			i++
		}
		if k < len(ord.Rows) {
			j.PushRight(ord.Rows[k])
			k++
		}
	}
	j.FinishLeft()
	j.FinishRight()
	if n != len(li.Rows) {
		log.Fatalf("hash join produced %d rows, want %d", n, len(li.Rows))
	}
	return ctx.Clock.Now
}

func runPair(li, ord *adp.Relation, lKey, oKey []int, pqCap int) (float64, adp.ComplementaryJoin) {
	ctx := adp.NewExecContext()
	n := 0
	cj := adp.NewComplementaryJoin(ctx, li.Schema, ord.Schema, lKey, oKey, pqCap,
		adp.SinkFunc(func(adp.Tuple) { n++ }))
	i, k := 0, 0
	for i < len(li.Rows) || k < len(ord.Rows) {
		if i < len(li.Rows) {
			cj.PushLeft(li.Rows[i])
			i++
		}
		if k < len(ord.Rows) {
			cj.PushRight(ord.Rows[k])
			k++
		}
	}
	cj.Finish()
	if n != len(li.Rows) {
		log.Fatalf("join produced %d rows, want %d", n, len(li.Rows))
	}
	return ctx.Clock.Now, *cj
}

// Streaming: consume query results as a live cursor instead of a
// blocking Execute. Sources arrive over a simulated bursty wireless link;
// result rows stream out while the run is still reading, and a typed
// event subscription narrates the adaptive execution (phase starts, plan
// switches, stitch-up, delivery watermarks) as it happens.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	adp "github.com/tukwila/adp"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A small dimension table and a large fact table. The fact table is
	// remote and bursty: tuples arrive in congested bursts, which is
	// exactly the regime the adaptive engine (and a streaming consumer)
	// is built for.
	customers := adp.NewRelation("customers", adp.NewSchema(
		adp.Col{Name: "customers.custkey", Kind: adp.KindInt},
		adp.Col{Name: "customers.name", Kind: adp.KindString},
	), nil)
	for i := int64(0); i < 100; i++ {
		customers.Rows = append(customers.Rows, adp.Tuple{
			adp.Int(i), adp.Str(fmt.Sprintf("Customer#%03d", i)),
		})
	}
	orders := adp.NewRelation("orders", adp.NewSchema(
		adp.Col{Name: "orders.id", Kind: adp.KindInt},
		adp.Col{Name: "orders.custkey", Kind: adp.KindInt},
		adp.Col{Name: "orders.total", Kind: adp.KindFloat},
	), nil)
	for i := int64(0); i < 50000; i++ {
		orders.Rows = append(orders.Rows, adp.Tuple{
			adp.Int(i), adp.Int(rng.Int63n(100)), adp.Float(10 + rng.Float64()*990),
		})
	}

	eng := adp.NewEngine()
	eng.Register(customers)
	// ~200k tuples/s in bursts of 4000 with 1% gap jitter.
	eng.RegisterRemote(orders, adp.NewBursty(orders.Len(), 200000, 4000, 0.01, 7))

	q := eng.Query("live-orders").
		From("customers", "orders").
		Join("orders", "custkey", "customers", "custkey").
		Where("orders", adp.Gt(adp.Column("orders.total"), adp.FloatLit(500))).
		Select("orders.id", "customers.name", "orders.total").
		MustBuild()

	// Open the cursor. The context governs the whole run: cancel it (or
	// Close the stream) and the engine winds down at the next batch
	// boundary with all workers joined.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := eng.Stream(ctx, q,
		adp.WithStrategy(adp.StrategyCorrective),
		adp.WithPollEvery(1024),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Subscribe to execution events. The subscription replays from the
	// start of the run and closes once the run finishes and the log is
	// drained, so ranging over it needs no extra synchronization beyond
	// waiting for the channel to close.
	events := s.Events()
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range events {
			switch e := ev.(type) {
			case adp.PhaseStarted:
				fmt.Printf("[event] phase %d started: %.60s…\n", e.Phase, e.Plan)
			case adp.PlanSwitched:
				fmt.Printf("[event] plan switched (cand %.3g + stitch %.3g < %.3g)\n",
					e.CandidateCost, e.StitchPenalty, e.CurrentRemaining)
			case adp.StitchUpStarted:
				fmt.Printf("[event] stitch-up over %d phases\n", e.Phases)
			case adp.RowsDelivered:
				fmt.Printf("[event] %6d rows by t=%.3fs (virtual)\n", e.Rows, e.VirtualSeconds)
			}
		}
	}()

	// Consume rows as they arrive — first results show up while the
	// bursty source is still delivering.
	fmt.Printf("schema: %v\n", s.Schema().Names())
	seen := 0
	for row, err := range s.Rows() {
		if err != nil {
			log.Fatal(err)
		}
		if seen < 5 {
			fmt.Printf("[row] %v\n", row)
		}
		seen++
	}

	rep, err := s.Report()
	if err != nil {
		log.Fatal(err)
	}
	<-eventsDone
	fmt.Printf("\nstreamed %d rows in %d phase(s), %.3fs virtual (%.3fs wall)\n",
		seen, len(rep.Phases), rep.VirtualSeconds, rep.RealSeconds)
}

// Adaptive pre-aggregation (§6): the adjustable-window pre-aggregation
// operator coalesces repetitive streams ahead of a join, growing its
// window while coalescing pays off and shrinking to a pass-through when
// it does not — so the optimizer can insert it everywhere without risk.
package main

import (
	"fmt"
	"log"

	adp "github.com/tukwila/adp"
)

func main() {
	// TPC-H Q10A-shaped query: revenue per customer over ALL orders.
	// Every order has several lineitems, so pre-aggregating lineitem
	// revenue by order key before the join shrinks the join input.
	d := adp.GenerateDataset(adp.DatagenConfig{ScaleFactor: 0.01, Seed: 5})

	eng := adp.NewEngine()
	for _, rel := range []*adp.Relation{d.Customer, d.Orders, d.Lineitem, d.Nation} {
		eng.Register(rel)
	}
	q := eng.Query("revenue-per-customer").
		From("customer", "orders", "lineitem", "nation").
		Join("customer", "c_custkey", "orders", "o_custkey").
		Join("orders", "o_orderkey", "lineitem", "l_orderkey").
		Join("customer", "c_nationkey", "nation", "n_nationkey").
		GroupBy("customer.c_custkey", "customer.c_name", "nation.n_name").
		Agg(adp.AggSum,
			adp.Mul(adp.Column("lineitem.l_extendedprice"),
				adp.Sub(adp.FloatLit(1), adp.Column("lineitem.l_discount"))),
			"revenue").
		MustBuild()

	fmt.Println("pre-aggregation strategies on revenue-per-customer:")
	var base []adp.Tuple
	for _, mode := range []struct {
		label string
		m     adp.PreAggMode
	}{
		{"single final aggregation", adp.PreAggNone},
		{"adjustable-window pre-agg", adp.PreAggWindowed},
		{"traditional pre-agg", adp.PreAggTraditional},
	} {
		rep, err := eng.Execute(q, adp.Options{Strategy: adp.StrategyStatic, PreAgg: mode.m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %.4f virtual s, %d groups\n", mode.label, rep.VirtualSeconds, len(rep.Rows))
		if base == nil {
			base = rep.Rows
		} else if len(base) != len(rep.Rows) {
			log.Fatalf("pre-aggregation changed the result: %d vs %d groups", len(rep.Rows), len(base))
		}
	}
	fmt.Println("\nall three strategies return identical results; the windowed")
	fmt.Println("operator is pipelined and self-regulating, so it is safe to")
	fmt.Println("insert at every pre-aggregation point (paper §6).")
}

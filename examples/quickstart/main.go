// Quickstart: build a small catalog, run a grouped join with corrective
// query processing, and read the adaptive-execution report.
package main

import (
	"fmt"
	"log"
	"math/rand"

	adp "github.com/tukwila/adp"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Two sources: orders and customers. In a data-integration setting
	// these would be autonomous remote sources with unknown sizes.
	orders := adp.NewRelation("orders", adp.NewSchema(
		adp.Col{Name: "orders.id", Kind: adp.KindInt},
		adp.Col{Name: "orders.custkey", Kind: adp.KindInt},
		adp.Col{Name: "orders.total", Kind: adp.KindFloat},
	), nil)
	for i := int64(0); i < 10000; i++ {
		orders.Rows = append(orders.Rows, adp.Tuple{
			adp.Int(i),
			adp.Int(rng.Int63n(200)),
			adp.Float(10 + rng.Float64()*990),
		})
	}
	customers := adp.NewRelation("customers", adp.NewSchema(
		adp.Col{Name: "customers.custkey", Kind: adp.KindInt},
		adp.Col{Name: "customers.name", Kind: adp.KindString},
		adp.Col{Name: "customers.country", Kind: adp.KindString},
	), nil)
	countries := []string{"FR", "DE", "US", "JP", "BR"}
	for i := int64(0); i < 200; i++ {
		customers.Rows = append(customers.Rows, adp.Tuple{
			adp.Int(i),
			adp.Str(fmt.Sprintf("Customer#%03d", i)),
			adp.Str(countries[rng.Intn(len(countries))]),
		})
	}

	eng := adp.NewEngine()
	eng.Register(orders)
	eng.Register(customers)

	// Total and average spend per country for large orders.
	q := eng.Query("spend-by-country").
		From("orders", "customers").
		Join("orders", "custkey", "customers", "custkey").
		Where("orders", adp.Gt(adp.Column("orders.total"), adp.FloatLit(100))).
		GroupBy("customers.country").
		Agg(adp.AggSum, adp.Column("orders.total"), "total_spend").
		Agg(adp.AggAvg, adp.Column("orders.total"), "avg_spend").
		Agg(adp.AggCount, nil, "orders").
		MustBuild()

	// Corrective query processing: the engine starts with a default plan
	// (it knows nothing about the sources), monitors execution, and will
	// switch plans mid-stream if observations reveal a better one.
	rep, err := eng.Execute(q, adp.Options{
		Strategy:  adp.StrategyCorrective,
		PollEvery: 512,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(adp.FormatRows(rep.Schema, rep.Rows, 0))
	fmt.Printf("strategy=%v phases=%d switches=%d virtual=%.4fs\n",
		rep.Strategy, len(rep.Phases), rep.Switches, rep.VirtualSeconds)
	for i, p := range rep.Phases {
		fmt.Printf("  phase %d (%d tuples): %s\n", i, p.Delivered, p.Plan)
	}
	if rep.StitchCombos > 0 {
		fmt.Printf("  stitch-up: %d combinations, %d tuples reused\n",
			rep.StitchCombos, rep.Reused)
	}
}

// Example server: the adaptive query engine behind the HTTP wire
// protocol, in one process. Boots the query service over a small TPC-H
// dataset, streams a corrective query as NDJSON frames, replays its
// adaptive-execution events over SSE, shows the plan cache turning the
// second run into a hit, and drains gracefully.
//
// Run with: go run ./examples/server
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"github.com/tukwila/adp/internal/datagen"
	"github.com/tukwila/adp/internal/engine"
	"github.com/tukwila/adp/internal/server"
	"github.com/tukwila/adp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Engine + service over a generated dataset; the workload queries
	// are registered as prepared statements invocable by name.
	d := datagen.Generate(datagen.Config{ScaleFactor: 0.002, Seed: 42})
	eng := engine.New()
	for _, rel := range d.Relations() {
		eng.Register(rel)
	}
	svc := server.New(eng, server.Config{MaxConcurrent: 4})
	for _, q := range workload.All() {
		svc.RegisterPrepared(q.Name, q)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Stream Q3A twice: the first run fills the plan cache (the report
	// frame says "miss"), the second skips the optimizer ("hit").
	var queryID string
	for run := 0; run < 2; run++ {
		resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(
			`{"query":{"prepared":"Q3A"},"options":{"strategy":"corrective","partitions":2}}`))
		if err != nil {
			return err
		}
		queryID = resp.Header.Get("Adp-Query-Id")
		rows, tail := 0, ""
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, `{"type":"row"`):
				rows++
			case strings.HasPrefix(line, `{"type":"schema"`):
				fmt.Printf("run %d schema: %.70s...\n", run, line)
			default:
				tail = line
			}
		}
		resp.Body.Close()
		fmt.Printf("run %d: %d rows, report: %.110s...\n", run, rows, tail)
	}

	// Replay the last run's adaptive-execution narrative over SSE.
	resp, err := http.Get(base + "/v1/query/" + queryID + "/events")
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			fmt.Println("event:", ev)
		}
	}
	resp.Body.Close()

	// Graceful drain: stop admitting, finish in-flight streams, exit.
	if err := svc.Shutdown(context.Background()); err != nil {
		return err
	}
	fmt.Println("drained")
	return httpSrv.Close()
}

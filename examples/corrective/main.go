// Corrective query processing on the paper's running example (§2,
// Figure 1): flights F(fid, from, to, when), travelers T(ssn, flight),
// and children-per-traveler C(p, num), asking for each flight's maximum
// child count:
//
//	Group[fid, from] max(num) (F ⋈ T ⋈ C)
//
// The optimizer starts with no statistics, mis-plans, observes real
// selectivities mid-stream, switches plans, and stitches the phases back
// together — exactly the Phase 0 / Phase 1 / stitch-up picture of
// Figure 1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	adp "github.com/tukwila/adp"
)

func main() {
	rng := rand.New(rand.NewSource(2004))
	cities := []string{"SEA", "SFO", "PHL", "JFK", "BOS", "LAX"}

	flights := adp.NewRelation("F", adp.NewSchema(
		adp.Col{Name: "F.fid", Kind: adp.KindInt},
		adp.Col{Name: "F.from", Kind: adp.KindString},
		adp.Col{Name: "F.to", Kind: adp.KindString},
		adp.Col{Name: "F.when", Kind: adp.KindInt},
	), nil)
	const nFlights = 3000
	for i := int64(0); i < nFlights; i++ {
		flights.Rows = append(flights.Rows, adp.Tuple{
			adp.Int(i),
			adp.Str(cities[rng.Intn(len(cities))]),
			adp.Str(cities[rng.Intn(len(cities))]),
			adp.Int(rng.Int63n(365)),
		})
	}

	travelers := adp.NewRelation("T", adp.NewSchema(
		adp.Col{Name: "T.ssn", Kind: adp.KindInt},
		adp.Col{Name: "T.flight", Kind: adp.KindInt},
	), nil)
	const nTravelers = 20000
	for i := 0; i < nTravelers; i++ {
		travelers.Rows = append(travelers.Rows, adp.Tuple{
			adp.Int(rng.Int63n(5000)),
			adp.Int(rng.Int63n(nFlights)),
		})
	}

	// Children records are heavily duplicated per parent: the T ⋈ C join
	// is "multiplicative" (output exceeds both inputs), the situation the
	// optimizer's no-statistics estimate gets badly wrong (§4.2).
	children := adp.NewRelation("C", adp.NewSchema(
		adp.Col{Name: "C.p", Kind: adp.KindInt},
		adp.Col{Name: "C.num", Kind: adp.KindInt},
	), nil)
	for i := int64(0); i < 15000; i++ {
		children.Rows = append(children.Rows, adp.Tuple{
			adp.Int(i % 400),
			adp.Int(rng.Int63n(6)),
		})
	}

	// The sources are shuffled — "stored in randomly distributed order"
	// (Example 2.1) — and delivered over a bandwidth-limited link.
	eng := adp.NewEngine()
	eng.RegisterRemote(adp.Shuffle(flights, 1), adp.Bandwidth{TuplesPerSec: 200000})
	eng.RegisterRemote(adp.Shuffle(travelers, 2), adp.Bandwidth{TuplesPerSec: 200000})
	eng.RegisterRemote(adp.Shuffle(children, 3), adp.Bandwidth{TuplesPerSec: 200000})

	// Stale source descriptions, the normality of data integration: the
	// advertised cardinalities are badly out of date, so the optimizer's
	// initial plan joins travelers with children first — a join that at
	// runtime turns out to be multiplicative.
	eng.AdvertiseCardinality("F", 20000)
	eng.AdvertiseCardinality("T", 500)
	eng.AdvertiseCardinality("C", 400)

	q := eng.Query("flights-max-children").
		From("F", "T", "C").
		Join("F", "fid", "T", "flight").
		Join("T", "ssn", "C", "p").
		GroupBy("F.fid", "F.from").
		Agg(adp.AggMax, adp.Column("C.num"), "max_children").
		MustBuild()

	for _, strat := range []adp.Strategy{adp.StrategyStatic, adp.StrategyCorrective} {
		rep, err := eng.Execute(q, adp.Options{
			Strategy:     strat,
			PollEvery:    1024,
			SwitchFactor: 0.9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11v: %5d groups, %.4f virtual s, %d phase(s)\n",
			strat, len(rep.Rows), rep.VirtualSeconds, len(rep.Phases))
		for i, p := range rep.Phases {
			fmt.Printf("    phase %d (%d tuples): %s\n", i, p.Delivered, p.Plan)
		}
		if rep.StitchCombos > 0 {
			fmt.Printf("    stitch-up: %.4fs, %d combos, %d reused, %d discarded\n",
				rep.StitchTime, rep.StitchCombos, rep.Reused, rep.Discarded)
		}
	}
}

package adp_test

// Benchmarks regenerating the paper's tables and figures, one per
// experiment (see DESIGN.md's experiment index). Each benchmark iteration
// executes the full experiment at a reduced scale factor so `go test
// -bench=.` completes quickly; run cmd/adpbench with -sf 0.05 or larger
// for paper-regime numbers. Benchmarks report the headline metric of the
// experiment as custom units alongside ns/op.

import (
	"testing"

	"github.com/tukwila/adp/internal/bench"
)

const benchSF = 0.01

func benchCfg() bench.Config {
	return bench.Config{SF: benchSF, Seed: 42, PollEvery: 2048}
}

// BenchmarkFigure2_Comparison regenerates Figure 2: static vs corrective
// vs plan partitioning over uniform and skewed TPC-H, with and without
// cardinalities.
func BenchmarkFigure2_Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Comparison(benchCfg(), false)
		if err != nil {
			b.Fatal(err)
		}
		reportGap(b, cells)
	}
}

// reportGap publishes static-none / adaptive-none virtual-time ratios.
func reportGap(b *testing.B, cells []bench.CellResult) {
	b.Helper()
	var staticNone, adaptNone float64
	for _, c := range cells {
		if c.Query == "Q10A" && c.Dataset == "uniform" {
			switch c.Strategy + "-" + c.Stats {
			case "static-none":
				staticNone = c.VirtualSeconds
			case "adaptive-none":
				adaptNone = c.VirtualSeconds
			}
		}
	}
	if adaptNone > 0 {
		b.ReportMetric(staticNone/adaptNone, "q10a_speedup")
	}
}

// BenchmarkTable1_StitchUpBreakdown regenerates Table 1 (phases, stitch-up
// time, reused/discarded tuples) from the corrective cells.
func BenchmarkTable1_StitchUpBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Comparison(benchCfg(), false)
		if err != nil {
			b.Fatal(err)
		}
		var reused int64
		for _, c := range cells {
			if c.Strategy == "adaptive" {
				reused += c.Reused
			}
		}
		b.ReportMetric(float64(reused), "reused_tuples")
	}
}

// BenchmarkFigure3_Wireless regenerates Figure 3: the strategy comparison
// over the simulated bursty 802.11b link.
func BenchmarkFigure3_Wireless(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = []string{"Q3A", "Q10A"} // wireless matrix is slow; subset
	for i := 0; i < b.N; i++ {
		cells, err := bench.Comparison(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, c := range cells {
			sum += c.VirtualSeconds
		}
		b.ReportMetric(sum/float64(len(cells)), "avg_response_s")
	}
}

// BenchmarkTable2_WirelessBreakdown regenerates Table 2.
func BenchmarkTable2_WirelessBreakdown(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = []string{"Q10A"}
	for i := 0; i < b.N; i++ {
		cells, err := bench.Comparison(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		var stitch float64
		for _, c := range cells {
			if c.Strategy == "adaptive" {
				stitch += c.StitchSeconds
			}
		}
		b.ReportMetric(stitch, "stitch_s")
	}
}

// BenchmarkSection45_Predictability regenerates the §4.5 study: histogram
// + order-detection join-size estimation and its overhead.
func BenchmarkSection45_Predictability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Section45(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Est2Way/last.True2Way, "est_over_true")
		b.ReportMetric((res.InstrumentedSeconds/res.PlainSeconds-1)*100, "overhead_pct")
	}
}

// BenchmarkFigure5_ComplementaryJoins regenerates Figure 5: hash join vs
// complementary pair vs pair+priority-queue across reordering levels.
func BenchmarkFigure5_ComplementaryJoins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Figure5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var hash, comp float64
		for _, c := range cells {
			if c.Dataset == "uniform" && c.Reorder == 0 {
				switch c.Strategy {
				case "hash":
					hash = c.Seconds
				case "comp":
					comp = c.Seconds
				}
			}
		}
		if comp > 0 {
			b.ReportMetric(hash/comp, "sorted_speedup")
		}
	}
}

// BenchmarkTable3_JoinDistribution regenerates Table 3 (merge/hash/stitch
// output distribution).
func BenchmarkTable3_JoinDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Figure5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var mergeFrac float64
		for _, c := range cells {
			if c.Strategy == "comp+pq" && c.Reorder == 0.01 && c.Dataset == "uniform" {
				total := c.MergeOut + c.HashOut + c.StitchOut
				if total > 0 {
					mergeFrac = float64(c.MergeOut) / float64(total)
				}
			}
		}
		b.ReportMetric(mergeFrac*100, "pq_merge_pct")
	}
}

// BenchmarkFigure6_PreAggregation regenerates Figure 6: single vs
// adjustable-window vs traditional pre-aggregation.
func BenchmarkFigure6_PreAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Figure6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var single, windowed float64
		for _, c := range cells {
			if c.Query == "Q10A" && c.Dataset == "uniform" {
				switch c.Mode {
				case "single":
					single = c.Seconds
				case "windowed":
					windowed = c.Seconds
				}
			}
		}
		if windowed > 0 {
			b.ReportMetric(single/windowed, "q10a_preagg_speedup")
		}
	}
}

// Benchmark_Ablation_DesignChoices sweeps the polling interval, the
// priority-queue length, the window policy, and stitch-up reuse.
func Benchmark_Ablation_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablations(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "sweep_points")
	}
}

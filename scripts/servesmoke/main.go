// Command servesmoke is the `make serve-smoke` driver: it boots a built
// adpserve binary on a random port, runs the full black-box happy path —
// /healthz, a streamed NDJSON query checked frame by frame, the SSE
// events replay, /metrics — then sends SIGTERM and asserts the server
// drains and exits cleanly. It exercises the deployable artifact, not
// the library: a regression in flag parsing, listener bring-up, or
// signal handling fails here even when every unit test passes.
//
// Usage: go run ./scripts/servesmoke -bin bin/adpserve
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "bin/adpserve", "path to the built adpserve binary")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

func run(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-sf", "0.003", "-max-concurrent", "4")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	defer cmd.Process.Kill() // no-op if the graceful exit below succeeded

	// The binary prints its bound address once the listener is up.
	addrCh := make(chan string, 1)
	logLines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "adpserve: listening on "); ok {
				addrCh <- rest
			}
			select {
			case logLines <- line:
			default:
			}
		}
		close(logLines)
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not announce its listen address within 30s")
	}

	if err := checkHealthz(base); err != nil {
		return err
	}
	if err := checkQueryStream(base); err != nil {
		return err
	}
	if err := checkEvents(base); err != nil {
		return err
	}
	if err := checkMetrics(base); err != nil {
		return err
	}

	// Graceful shutdown: SIGTERM must drain and exit 0. Read the log
	// scanner to EOF *before* calling Wait — Wait closes the stdout pipe
	// when the process exits, and calling it while the scanner is
	// mid-read races the final log lines away.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	drained := false
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for line := range logLines {
			if strings.Contains(line, "drained") {
				drained = true
			}
		}
	}()
	select {
	case <-scanDone:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("server exited non-zero after SIGTERM: %w", err)
	}
	if !drained {
		return fmt.Errorf("server exited without logging a completed drain")
	}
	return nil
}

func checkHealthz(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if body.Status != "ok" {
		return fmt.Errorf("healthz: status %q, want ok", body.Status)
	}
	return nil
}

// checkQueryStream streams a prepared corrective query and validates the
// NDJSON framing: exactly one schema frame first, row frames with the
// schema's arity, one terminal report frame, nothing after it.
func checkQueryStream(base string) error {
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(
		`{"query":{"prepared":"Q3A"},"options":{"strategy":"corrective","partitions":2}}`))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("query: content-type %q", ct)
	}
	if resp.Header.Get("Adp-Query-Id") == "" {
		return fmt.Errorf("query: missing Adp-Query-Id header")
	}
	var (
		arity, rows int
		sawSchema   bool
		sawReport   bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if sawReport {
			return fmt.Errorf("query: frame after the terminal report frame: %.80s", sc.Text())
		}
		var frame struct {
			Type    string            `json:"type"`
			Columns []json.RawMessage `json:"columns"`
			Values  []json.RawMessage `json:"values"`
			Report  *struct {
				Rows      int    `json:"rows"`
				PlanCache string `json:"plan_cache"`
			} `json:"report"`
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			return fmt.Errorf("query: bad frame %.80s: %w", sc.Text(), err)
		}
		switch frame.Type {
		case "schema":
			if sawSchema {
				return fmt.Errorf("query: duplicate schema frame")
			}
			sawSchema = true
			arity = len(frame.Columns)
		case "row":
			if !sawSchema {
				return fmt.Errorf("query: row frame before schema frame")
			}
			if len(frame.Values) != arity {
				return fmt.Errorf("query: row arity %d, schema arity %d", len(frame.Values), arity)
			}
			rows++
		case "report":
			sawReport = true
			if frame.Report == nil || frame.Report.Rows != rows {
				return fmt.Errorf("query: report rows mismatch (streamed %d)", rows)
			}
			if frame.Report.PlanCache != "miss" {
				return fmt.Errorf("query: first run plan_cache = %q, want miss", frame.Report.PlanCache)
			}
		default:
			return fmt.Errorf("query: unexpected frame type %q", frame.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSchema || !sawReport || rows == 0 {
		return fmt.Errorf("query: incomplete stream (schema=%v rows=%d report=%v)", sawSchema, rows, sawReport)
	}
	fmt.Printf("servesmoke: streamed %d rows\n", rows)
	return nil
}

func checkEvents(base string) error {
	resp, err := http.Get(base + "/v1/query/q-1/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: status %d", resp.StatusCode)
	}
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			events++
		}
	}
	if events == 0 {
		return fmt.Errorf("events: no SSE events replayed")
	}
	fmt.Printf("servesmoke: replayed %d events\n", events)
	return nil
}

func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	want := map[string]bool{"adp_queries_total 1": false, "adp_queries_inflight 0": false}
	for sc.Scan() {
		if _, ok := want[sc.Text()]; ok {
			want[sc.Text()] = true
		}
	}
	for line, seen := range want {
		if !seen {
			return fmt.Errorf("metrics: missing %q", line)
		}
	}
	return nil
}

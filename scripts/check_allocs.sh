#!/usr/bin/env bash
# Allocation-budget gate: runs the perf microbenchmarks (make bench-perf)
# and fails when any pinned allocs/op budget regresses. The raw benchmark
# output is written to the file named by the first argument (default
# bench-perf.txt) so CI can archive it for the perf trajectory.
#
# Usage: scripts/check_allocs.sh [out-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench-perf.txt}"
make bench-perf | tee "$out"

fail=0

# check <benchmark-name-regex> <max-allocs-per-op>
# Takes the WORST (max) allocs/op among matching result lines, so a
# regression in any sub-benchmark trips the gate.
check() {
  local pattern="$1" budget="$2" worst
  worst=$(awk -v pat="$pattern" '$1 ~ pat {
      for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }' "$out" | sort -n | tail -1)
  if [ -z "${worst}" ]; then
    echo "check-allocs: FAIL: no benchmark result matched '$pattern'" >&2
    fail=1
    return
  fi
  if [ "$worst" -gt "$budget" ]; then
    echo "check-allocs: FAIL: $pattern = $worst allocs/op, budget $budget" >&2
    fail=1
  else
    echo "check-allocs: ok:   $pattern = $worst allocs/op (budget $budget)"
  fi
}

# Pinned budgets (see ROADMAP.md / PR history). An op in the push
# benchmarks delivers one tuple per side.
check 'BenchmarkHashTableProbe'                  0  # both probe variants: allocation-free
check 'BenchmarkPipelinedJoinPush/batch(-[0-9]+)?$'    2  # PR 1 headline: batched push <= 2 allocs/op
check 'BenchmarkPipelinedJoinPush/columnar(-[0-9]+)?$' 2  # PR 3/9: columnar push never above the row path
check 'BenchmarkPipelinedJoinPush/batch-wide'    2  # PR 9: wide-schema row baseline
check 'BenchmarkPipelinedJoinPush/columnar-wide' 2  # PR 9: wide-schema columnar gather-emit
check 'BenchmarkHashKeys'                        0  # PR 3: vectorized hash kernel reuse path
check 'BenchmarkMergeJoinPush/batch'             4  # PR 2: batched ordered merge join
check 'BenchmarkAggTableAbsorb'                  1  # group-by absorb: zero steady-state (1 = headroom)
check 'BenchmarkExchangePartition/rows'          2  # PR 4: exchange row scatter, steady-state <= 2 per batch
check 'BenchmarkExchangePartition/columnar'      2  # PR 9: columnar exchange frame (selection-vector Gather)
check 'BenchmarkPartitionMergeRelease'           1  # PR 9: order-releasing root flush (1 = headroom)
check 'BenchmarkStreamDelivery'                  2  # PR 5: cursor Next() per row, whole pipeline on the count
check 'BenchmarkFaultyNext'                      1  # PR 6: fault wrapper no-fault fast path (1 = Reset headroom)
check 'BenchmarkRowEncode'                       0  # PR 7: per-row NDJSON encode into a reused buffer
check 'BenchmarkDeltaPropagation/join'           2  # PR 10: z-set join re-probe per signed delta row
check 'BenchmarkDeltaPropagation/agg'            2  # PR 10: signed agg absorb + revision emit per delta row

if [ "$fail" -ne 0 ]; then
  echo "check-allocs: allocation budgets regressed" >&2
  exit 1
fi
echo "check-allocs: all allocation budgets hold"
